#include "sched/shard.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "checker/progress.hpp"
#include "config/network.hpp"

#include "sched/transport.hpp"
#include "sched/wire.hpp"

namespace plankton::sched {
namespace {

using wire::fits;
using wire::get_int;
using wire::get_string;
using wire::put_int;
using wire::put_string;

void put_stats(std::string& out, const SearchStats& s) {
  put_int(out, s.states_explored);
  put_int(out, s.states_stored);
  put_int(out, s.revisits_skipped);
  put_int(out, s.converged_states);
  put_int(out, s.policy_checks);
  put_int(out, s.suppressed_checks);
  put_int(out, s.pruned_inconsistent);
  put_int(out, s.det_steps);
  put_int(out, s.nondet_branches);
  put_int(out, s.failure_sets);
  put_int(out, s.ad_cache_hits);
  put_int(out, s.ad_cache_misses);
  put_int(out, s.dirty_refreshes);
  put_int(out, s.por_pruned);
  put_int(out, s.por_source_sets);
  put_int(out, static_cast<std::int64_t>(s.por_footprint_time.count()));
  put_int(out, s.frontier_peak);
  put_int(out, s.budget_checks);
  put_int(out, s.max_depth);
  put_int(out, static_cast<std::uint64_t>(s.bytes_paths));
  put_int(out, static_cast<std::uint64_t>(s.bytes_routes));
  put_int(out, static_cast<std::uint64_t>(s.bytes_visited));
  put_int(out, static_cast<std::uint64_t>(s.bytes_stack_peak));
  put_int(out, static_cast<std::uint64_t>(s.bytes_ad_cache));
  put_int(out, static_cast<std::int64_t>(s.elapsed.count()));
}

bool get_stats(std::string_view& in, SearchStats& s) {
  std::uint64_t sz[5] = {};
  std::int64_t ns = 0;
  std::int64_t por_ns = 0;
  const bool ok =
      get_int(in, s.states_explored) && get_int(in, s.states_stored) &&
      get_int(in, s.revisits_skipped) && get_int(in, s.converged_states) &&
      get_int(in, s.policy_checks) && get_int(in, s.suppressed_checks) &&
      get_int(in, s.pruned_inconsistent) && get_int(in, s.det_steps) &&
      get_int(in, s.nondet_branches) && get_int(in, s.failure_sets) &&
      get_int(in, s.ad_cache_hits) && get_int(in, s.ad_cache_misses) &&
      get_int(in, s.dirty_refreshes) && get_int(in, s.por_pruned) &&
      get_int(in, s.por_source_sets) && get_int(in, por_ns) &&
      get_int(in, s.frontier_peak) && get_int(in, s.budget_checks) &&
      get_int(in, s.max_depth) && get_int(in, sz[0]) && get_int(in, sz[1]) &&
      get_int(in, sz[2]) && get_int(in, sz[3]) && get_int(in, sz[4]) &&
      get_int(in, ns);
  if (!ok) return false;
  s.por_footprint_time = std::chrono::nanoseconds(por_ns);
  s.bytes_paths = static_cast<std::size_t>(sz[0]);
  s.bytes_routes = static_cast<std::size_t>(sz[1]);
  s.bytes_visited = static_cast<std::size_t>(sz[2]);
  s.bytes_stack_peak = static_cast<std::size_t>(sz[3]);
  s.bytes_ad_cache = static_cast<std::size_t>(sz[4]);
  s.elapsed = std::chrono::nanoseconds(ns);
  return true;
}

// -- robust fd I/O ----------------------------------------------------------

/// A peer that accepts nothing for this long is presumed wedged: the write
/// degrades to a transport error (→ the reassignment path) instead of
/// spinning forever. Polls ride in short slices so the budget is accurate.
constexpr int kWriteStallBudgetMs = 10000;
constexpr int kWritePollSliceMs = 100;
/// EINTR ceiling per write_all call: a signal storm must not become an
/// unbounded retry loop either.
constexpr int kMaxEintrRetries = 1024;

/// Writes everything, riding out EINTR/EAGAIN with *bounded* retries (the
/// coordinator keeps its ends non-blocking so it can also drain without
/// blocking). MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
/// process. On failure, `stalled` (when given) reports whether the give-up
/// was a retry-budget exhaustion rather than a hard socket error.
/// `synthetic_eintr` injects that many fake EINTR results before the first
/// real send — the FaultPlan eintr@N storm, driving the same retry
/// accounting a real signal storm would.
bool write_all(int fd, const char* data, std::size_t n, bool* stalled = nullptr,
               std::uint32_t synthetic_eintr = 0) {
  if (stalled != nullptr) *stalled = false;
  int stalled_ms = 0;
  int eintr_count = 0;
  while (n > 0) {
    if (synthetic_eintr > 0) {
      --synthetic_eintr;
      if (++eintr_count > kMaxEintrRetries) {
        if (stalled != nullptr) *stalled = true;
        return false;
      }
      continue;
    }
    const ssize_t w = send(fd, data, n, MSG_NOSIGNAL);
    if (w > 0) {
      data += w;
      n -= static_cast<std::size_t>(w);
      stalled_ms = 0;
      eintr_count = 0;
      continue;
    }
    if (w < 0 && errno == EINTR) {
      if (++eintr_count > kMaxEintrRetries) {
        if (stalled != nullptr) *stalled = true;
        return false;
      }
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (stalled_ms >= kWriteStallBudgetMs) {
        if (stalled != nullptr) *stalled = true;
        return false;
      }
      pollfd pfd{fd, POLLOUT, 0};
      (void)poll(&pfd, 1, kWritePollSliceMs);
      stalled_ms += kWritePollSliceMs;
      continue;
    }
    return false;
  }
  return true;
}

bool write_all(int fd, const std::string& s, bool* stalled = nullptr) {
  return write_all(fd, s.data(), s.size(), stalled);
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

void encode_frame(std::string& out, MsgType type, std::string_view payload) {
  put_int(out, kFrameMagic);
  put_int(out, kFrameVersion);
  put_int(out, static_cast<std::uint16_t>(type));
  put_int(out, static_cast<std::uint64_t>(payload.size()));
  out.append(payload);
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (failed_) return;
  // Compact lazily: drop consumed bytes once they dominate the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (failed_) return Status::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Status::kNeedMore;
  std::string_view hdr(buf_.data() + pos_, kFrameHeaderBytes);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t type = 0;
  std::uint64_t len = 0;
  (void)get_int(hdr, magic);
  (void)get_int(hdr, version);
  (void)get_int(hdr, type);
  (void)get_int(hdr, len);
  const auto poison = [this](const char* why) {
    failed_ = true;
    error_ = why;
    return Status::kError;
  };
  if (magic != kFrameMagic) return poison("bad frame magic");
  if (version != kFrameVersion) return poison("unsupported frame version");
  if (type < static_cast<std::uint16_t>(MsgType::kTaskAssign) ||
      type > static_cast<std::uint16_t>(MsgType::kSubtaskDone)) {
    return poison("unknown message type");
  }
  // Stream-state machine: kShutdown is terminal. Anything framed after it
  // (a late kHeartbeat from a confused worker, injected bytes on the serve
  // socket) is a protocol violation, not data to process.
  if (shutdown_seen_) return poison("frame after shutdown");
  if (len > max_payload_) return poison("frame payload exceeds limit");
  if (avail - kFrameHeaderBytes < len) return Status::kNeedMore;
  out.type = static_cast<MsgType>(type);
  if (out.type == MsgType::kShutdown) shutdown_seen_ = true;
  out.payload.assign(buf_.data() + pos_ + kFrameHeaderBytes,
                     static_cast<std::size_t>(len));
  pos_ += kFrameHeaderBytes + static_cast<std::size_t>(len);
  return Status::kFrame;
}

// ---------------------------------------------------------------------------
// Message payload codecs
// ---------------------------------------------------------------------------

std::string encode_task_assign(const TaskAssignMsg& m) {
  std::string out;
  put_int(out, m.task);
  put_int(out, static_cast<std::uint32_t>(m.evict.size()));
  for (const PecId p : m.evict) put_int(out, p);
  put_int(out, m.export_ok);
  return out;
}

bool decode_task_assign(std::string_view in, TaskAssignMsg& out) {
  out = TaskAssignMsg{};
  const auto fail = [&out] {
    out = TaskAssignMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_int(in, out.task) || !get_int(in, n) || !fits(in, n, sizeof(PecId))) {
    return fail();
  }
  out.evict.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_int(in, out.evict[i])) return fail();
  }
  if (!get_int(in, out.export_ok) || out.export_ok > 1 || !in.empty()) {
    return fail();
  }
  return true;
}

std::string encode_outcome_delivery(const OutcomeDeliveryMsg& m) {
  std::string out;
  put_int(out, m.pec);
  put_string(out, m.outcomes_wire);
  return out;
}

bool decode_outcome_delivery(std::string_view in, OutcomeDeliveryMsg& out) {
  out = OutcomeDeliveryMsg{};
  if (!get_int(in, out.pec) || !get_string(in, out.outcomes_wire) ||
      !in.empty()) {
    out = OutcomeDeliveryMsg{};
    return false;
  }
  return true;
}

std::string encode_violation(const ViolationMsg& m) {
  std::string out;
  put_int(out, m.pec);
  put_int(out, static_cast<std::uint32_t>(m.failed_links.size()));
  for (const LinkId l : m.failed_links) put_int(out, l);
  put_string(out, m.message);
  put_string(out, m.trail_text);
  return out;
}

bool decode_violation(std::string_view in, ViolationMsg& out) {
  out = ViolationMsg{};
  const auto fail = [&out] {
    out = ViolationMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_int(in, out.pec) || !get_int(in, n) || !fits(in, n, sizeof(LinkId))) {
    return fail();
  }
  out.failed_links.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_int(in, out.failed_links[i])) return fail();
  }
  if (!get_string(in, out.message) || !get_string(in, out.trail_text) ||
      !in.empty()) {
    return fail();
  }
  return true;
}

namespace {

// One PecDoneMsg's exact wire size: pec (4) + 7 flag bytes + the SearchStats
// block (25 x 8). Using the full size matters: fits() with a smaller stride
// would let a lying count amplify resize() far past the bytes present.
constexpr std::size_t kPecDoneWireBytes = 4 + 7 + 25 * 8;

void put_pec_done(std::string& out, const PecDoneMsg& p) {
  put_int(out, p.pec);
  put_int(out, p.holds);
  put_int(out, p.timed_out);
  put_int(out, p.state_limit_hit);
  put_int(out, p.memory_limit_hit);
  put_int(out, p.budget_tripped);
  put_int(out, p.exhaustive);
  put_int(out, p.translated);
  put_stats(out, p.stats);
}

bool get_pec_done(std::string_view& in, PecDoneMsg& p) {
  if (!get_int(in, p.pec) || !get_int(in, p.holds) ||
      !get_int(in, p.timed_out) || !get_int(in, p.state_limit_hit) ||
      !get_int(in, p.memory_limit_hit) || !get_int(in, p.budget_tripped) ||
      !get_int(in, p.exhaustive) || !get_int(in, p.translated) ||
      !get_stats(in, p.stats)) {
    return false;
  }
  return p.holds <= 1 && p.timed_out <= 1 && p.state_limit_hit <= 1 &&
         p.memory_limit_hit <= 1 && p.exhaustive <= 1 && p.translated <= 1 &&
         p.budget_tripped <= static_cast<std::uint8_t>(BudgetKind::kMemory);
}

// Minimum wire size of a StateSnapshot: path count (4) + key (8) + sleep
// word count (4) + route dictionary length (8) with all three empty.
constexpr std::size_t kSnapshotMinWireBytes = 4 + 8 + 4 + 8;
// One serialized SearchMove: kind (1) + four 32-bit ids.
constexpr std::size_t kMoveWireBytes = 1 + 4 * 4;

void put_snapshot(std::string& out, const StateSnapshot& s) {
  put_int(out, static_cast<std::uint32_t>(s.path.size()));
  for (const SearchMove& m : s.path) {
    put_int(out, static_cast<std::uint8_t>(m.kind));
    put_int(out, static_cast<std::uint32_t>(m.node));
    put_int(out, static_cast<std::uint32_t>(m.peer));
    put_int(out, static_cast<std::uint32_t>(m.route));
    put_int(out, static_cast<std::uint32_t>(m.prev));
  }
  put_int(out, s.key);
  put_int(out, static_cast<std::uint32_t>(s.sleep.size()));
  for (const std::uint64_t w : s.sleep) put_int(out, w);
  put_string(out, s.route_dict);
}

bool get_snapshot(std::string_view& in, StateSnapshot& s) {
  std::uint32_t moves = 0;
  if (!get_int(in, moves) || !fits(in, moves, kMoveWireBytes)) return false;
  s.path.resize(moves);
  for (std::uint32_t i = 0; i < moves; ++i) {
    SearchMove& m = s.path[i];
    std::uint8_t kind = 0;
    std::uint32_t node = 0;
    std::uint32_t peer = 0;
    std::uint32_t route = 0;
    std::uint32_t prev = 0;
    if (!get_int(in, kind) || !get_int(in, node) || !get_int(in, peer) ||
        !get_int(in, route) || !get_int(in, prev) ||
        kind > static_cast<std::uint8_t>(SearchMove::Kind::kWithdraw)) {
      return false;
    }
    m.kind = static_cast<SearchMove::Kind>(kind);
    m.node = static_cast<NodeId>(node);
    m.peer = static_cast<NodeId>(peer);
    m.route = static_cast<RouteId>(route);
    m.prev = static_cast<RouteId>(prev);
  }
  std::uint32_t words = 0;
  if (!get_int(in, s.key) || !get_int(in, words) ||
      !fits(in, words, sizeof(std::uint64_t))) {
    return false;
  }
  s.sleep.resize(words);
  for (std::uint32_t i = 0; i < words; ++i) {
    if (!get_int(in, s.sleep[i])) return false;
  }
  return get_string(in, s.route_dict);
}

}  // namespace

std::string encode_task_done(const TaskDoneMsg& m) {
  std::string out;
  put_int(out, m.task);
  put_int(out, static_cast<std::uint32_t>(m.pecs.size()));
  for (const PecDoneMsg& p : m.pecs) put_pec_done(out, p);
  return out;
}

bool decode_task_done(std::string_view in, TaskDoneMsg& out) {
  out = TaskDoneMsg{};
  const auto fail = [&out] {
    out = TaskDoneMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_int(in, out.task) || !get_int(in, n) ||
      !fits(in, n, kPecDoneWireBytes)) {
    return fail();
  }
  out.pecs.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_pec_done(in, out.pecs[i])) return fail();
  }
  if (!in.empty()) return fail();
  return true;
}

std::string encode_bootstrap_ack(const BootstrapAckMsg& m) {
  std::string out;
  put_int(out, m.ok);
  put_string(out, m.error);
  put_int(out, m.plan_hash);
  return out;
}

bool decode_bootstrap_ack(std::string_view in, BootstrapAckMsg& out) {
  out = BootstrapAckMsg{};
  if (!get_int(in, out.ok) || out.ok > 1 || !get_string(in, out.error) ||
      !get_int(in, out.plan_hash) || !in.empty()) {
    out = BootstrapAckMsg{};
    return false;
  }
  return true;
}

std::string encode_split_export(const SplitExportMsg& m) {
  std::string out;
  put_int(out, m.pec);
  put_int(out, static_cast<std::uint32_t>(m.snaps.size()));
  for (const StateSnapshot& s : m.snaps) put_snapshot(out, s);
  return out;
}

bool decode_split_export(std::string_view in, SplitExportMsg& out) {
  out = SplitExportMsg{};
  const auto fail = [&out] {
    out = SplitExportMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_int(in, out.pec) || !get_int(in, n) ||
      !fits(in, n, kSnapshotMinWireBytes)) {
    return fail();
  }
  out.snaps.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_snapshot(in, out.snaps[i])) return fail();
  }
  if (!in.empty()) return fail();
  return true;
}

std::string encode_subtask_assign(const SubtaskAssignMsg& m) {
  std::string out;
  put_int(out, m.id);
  put_int(out, m.pec);
  put_int(out, m.export_ok);
  put_int(out, static_cast<std::uint32_t>(m.snaps.size()));
  for (const StateSnapshot& s : m.snaps) put_snapshot(out, s);
  return out;
}

bool decode_subtask_assign(std::string_view in, SubtaskAssignMsg& out) {
  out = SubtaskAssignMsg{};
  const auto fail = [&out] {
    out = SubtaskAssignMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_int(in, out.id) || !get_int(in, out.pec) ||
      !get_int(in, out.export_ok) || out.export_ok > 1 || !get_int(in, n) ||
      !fits(in, n, kSnapshotMinWireBytes)) {
    return fail();
  }
  out.snaps.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_snapshot(in, out.snaps[i])) return fail();
  }
  if (!in.empty()) return fail();
  return true;
}

std::string encode_subtask_done(const SubtaskDoneMsg& m) {
  std::string out;
  put_int(out, m.id);
  put_pec_done(out, m.pec);
  return out;
}

bool decode_subtask_done(std::string_view in, SubtaskDoneMsg& out) {
  out = SubtaskDoneMsg{};
  if (!get_int(in, out.id) || !get_pec_done(in, out.pec) || !in.empty()) {
    out = SubtaskDoneMsg{};
    return false;
  }
  return true;
}

std::string encode_heartbeat(const HeartbeatMsg& m) {
  std::string out;
  put_int(out, m.progress);
  return out;
}

bool decode_heartbeat(std::string_view in, HeartbeatMsg& out) {
  out = HeartbeatMsg{};
  if (!get_int(in, out.progress) || !in.empty()) {
    out = HeartbeatMsg{};
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();

/// The worker's outbound side: one socket shared by the task loop (data
/// frames) and the heartbeat beacon thread, serialized by `mu` so frames
/// can never interleave mid-frame. `data_frames` counts outbound data frames
/// over the worker's lifetime — the index FaultPlan directives key on.
struct WorkerIo {
  int fd = -1;
  std::mutex mu;
  WorkerFaults faults;
  std::uint64_t data_frames = 0;
};

/// Ships one data frame, acting out any fault the plan schedules for it.
/// false = the coordinator is unreachable (the worker exits).
bool send_data_frame(WorkerIo& io, MsgType type, const std::string& payload) {
  std::string out;
  encode_frame(out, type, payload);
  const std::uint64_t frame_no = ++io.data_frames;
  const WorkerFaults& f = io.faults;
  if (f.hang_at_frame == frame_no && f.hang_ms > 0) {
    // Slow-but-alive: the beacon thread keeps heartbeating (lock not held),
    // so the coordinator must NOT escalate past the probe for this one.
    usleep(static_cast<useconds_t>(f.hang_ms) * 1000);
  }
  std::lock_guard<std::mutex> lock(io.mu);
  if (f.wedge_at_frame == frame_no) {
    // Alive-but-stuck: holding the write lock stalls the beacon thread too,
    // so heartbeats stop — exactly the failure the hard deadline exists for.
    if (f.wedge_ms == 0) {
      for (;;) pause();  // wedge forever; only SIGKILL ends this
    }
    usleep(static_cast<useconds_t>(f.wedge_ms) * 1000);
  }
  if (f.crash_at_frame == frame_no) _exit(9);
  if (f.torn_at_frame == frame_no) {
    // Half a frame, then death: the coordinator's decoder must wait for the
    // rest, see EOF instead, and take the reassignment path — never parse.
    (void)write_all(io.fd, out.data(), out.size() / 2);
    _exit(9);
  }
  if (f.stall_at_frame == frame_no && f.stall_ms > 0) {
    // Stalled peer: the connection goes fully quiet (the write lock is held,
    // so heartbeats stop too) without the process dying — the idle-deadline
    // and keepalive paths are what notice this one.
    usleep(static_cast<useconds_t>(f.stall_ms) * 1000);
  }
  if (f.drop_conn_at_frame == frame_no) {
    // Connection death with a surviving process: a TCP worker daemon goes
    // back to its accept loop, so recovery is reconnect + re-bootstrap, not
    // respawn.
    shutdown(io.fd, SHUT_RDWR);
    return false;
  }
  if (f.torn_tcp_at_frame == frame_no) {
    // Torn stream, surviving process: half a frame then a hard close. The
    // coordinator must poison the stream (never parse the torn frame) and
    // reassign; the worker is reachable again immediately.
    (void)write_all(io.fd, out.data(), out.size() / 2);
    shutdown(io.fd, SHUT_RDWR);
    return false;
  }
  if (!f.short_writes) {
    return write_all(io.fd, out.data(), out.size(), nullptr, f.eintr_burst);
  }
  // shortw: dribble the frame out in tiny pieces so the coordinator's
  // decoder reassembles across many reads.
  const char* data = out.data();
  std::size_t n = out.size();
  while (n > 0) {
    const std::size_t chunk = n < 7 ? n : 7;
    if (!write_all(io.fd, data, chunk, nullptr, f.eintr_burst)) return false;
    data += chunk;
    n -= chunk;
  }
  return true;
}

PecDoneMsg to_pec_done(const ShardPecResult& r) {
  PecDoneMsg pd;
  pd.pec = r.pec;
  pd.holds = r.holds ? 1 : 0;
  pd.timed_out = r.timed_out ? 1 : 0;
  pd.state_limit_hit = r.state_limit_hit ? 1 : 0;
  pd.memory_limit_hit = r.memory_limit_hit ? 1 : 0;
  pd.budget_tripped = static_cast<std::uint8_t>(r.budget_tripped);
  pd.exhaustive = r.exhaustive ? 1 : 0;
  pd.translated = r.translated ? 1 : 0;
  pd.stats = r.stats;
  return pd;
}

}  // namespace

/// One worker's whole session over an established coordinator socket. Exit
/// codes are diagnostic only — the coordinator treats any death identically
/// (reassign + respawn). `slot`/`generation` identify this incarnation to
/// the FaultPlan (a fault fires at generation 0 by default, so the respawn
/// is healthy).
int run_worker_session(
    int fd, int slot, int generation, const Network& net, const PecSet& pecs,
    std::size_t task_count, const ShardRunOptions& opts,
    const std::function<std::vector<ShardPecResult>(std::size_t,
                                                    OutcomeStore&)>& body,
    const ShardExportHooks* hooks) {
  WorkerIo io;
  io.fd = fd;
  io.faults = opts.fault_plan.for_worker(slot, generation);

  // Heartbeat beacon: liveness + the sampled exploration progress counter on
  // a fixed cadence. It shares the frame write lock with data frames, so a
  // worker wedged holding that lock goes silent — which is the point. The
  // beacon sleeps in short slices and watches a stop flag so the session
  // joins it before returning: a detached beacon would outlive the session
  // and write stray heartbeats to a closed — or reused — fd (TCP workers
  // serve many sessions over their lifetime on recycled descriptors).
  std::atomic<bool> beacon_stop{false};
  std::thread beacon;
  if (opts.heartbeat_interval_ms > 0) {
    beacon = std::thread([&io, &beacon_stop,
                          interval = opts.heartbeat_interval_ms] {
      const int slice = std::clamp(interval, 1, 10);
      int since_beat = 0;
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        if (beacon_stop.load(std::memory_order_acquire)) return;
        since_beat += slice;
        if (since_beat < interval) continue;
        since_beat = 0;
        HeartbeatMsg m;
        m.progress = progress_counter().load(std::memory_order_relaxed);
        std::string out;
        encode_frame(out, MsgType::kHeartbeat, encode_heartbeat(m));
        std::lock_guard<std::mutex> lock(io.mu);
        if (!write_all(io.fd, out)) return;  // coordinator went away
      }
    });
  }
  const auto finish = [&beacon, &beacon_stop](int code) {
    beacon_stop.store(true, std::memory_order_release);
    if (beacon.joinable()) beacon.join();
    return code;
  };

  // Split-export sink, bound into explorations by the hooks. Armed per
  // (sub)task by the coordinator's export_ok flag; on decline or send
  // failure the snapshots are handed back so the donor keeps them local.
  bool export_armed = false;
  const SplitExporter exporter = [&io, &export_armed](
                                     PecId pec,
                                     std::vector<StateSnapshot>&& snaps) {
    if (!export_armed || snaps.empty()) return false;
    SplitExportMsg m;
    m.pec = pec;
    m.snaps = std::move(snaps);
    if (send_data_frame(io, MsgType::kSplitExport, encode_split_export(m))) {
      return true;
    }
    snaps = std::move(m.snaps);  // transport gone: donor keeps the states
    return false;
  };

  OutcomeStore store(net, pecs);
  FrameDecoder decoder(opts.max_frame_payload);
  char buf[1 << 16];
  std::uint64_t reads = 0;  // 1-based read index slow-read@F keys on
  for (;;) {
    Frame frame;
    FrameDecoder::Status st;
    while ((st = decoder.next(frame)) == FrameDecoder::Status::kFrame) {
      switch (frame.type) {
        case MsgType::kShutdown:
          return finish(0);
        case MsgType::kOutcomeDelivery: {
          OutcomeDeliveryMsg msg;
          if (!decode_outcome_delivery(frame.payload, msg)) return finish(3);
          if (msg.pec >= pecs.pecs.size()) return finish(3);  // corrupt wire id
          std::vector<PecOutcome> outs;
          if (!store.deserialize(msg.outcomes_wire, outs)) return finish(3);
          store.put(msg.pec, std::move(outs));
          break;
        }
        case MsgType::kTaskAssign: {
          TaskAssignMsg msg;
          if (!decode_task_assign(frame.payload, msg)) return finish(3);
          if (msg.task >= task_count) return finish(3);  // corrupt wire id
          for (const PecId p : msg.evict) {
            if (p >= pecs.pecs.size()) return finish(3);
            store.evict(p);
          }
          if (opts.test_worker_task_delay_ms > 0) {
            usleep(static_cast<useconds_t>(opts.test_worker_task_delay_ms) *
                   1000);
          }
          const bool hooked = hooks != nullptr && hooks->run_task != nullptr;
          export_armed = hooked && msg.export_ok != 0;
          std::vector<ShardPecResult> results;
          try {
            results = hooked ? hooks->run_task(
                                   static_cast<std::size_t>(msg.task), store,
                                   exporter)
                             : body(static_cast<std::size_t>(msg.task), store);
          } catch (...) {
            return finish(4);
          }
          export_armed = false;
          TaskDoneMsg done;
          done.task = msg.task;
          for (ShardPecResult& r : results) {
            for (const ViolationMsg& v : r.violations) {
              if (!send_data_frame(io, MsgType::kViolationReport,
                                   encode_violation(v))) {
                return finish(2);
              }
            }
            if (r.record) {
              // The body published the outcomes into the local store (where
              // same-task mates and later tasks on this worker read them);
              // ship that single copy back to the coordinator.
              OutcomeDeliveryMsg od;
              od.pec = r.pec;
              od.outcomes_wire = store.serialize(store.get(r.pec));
              if (!send_data_frame(io, MsgType::kOutcomeDelivery,
                                   encode_outcome_delivery(od))) {
                return finish(2);
              }
            }
            done.pecs.push_back(to_pec_done(r));
          }
          if (!send_data_frame(io, MsgType::kTaskDone,
                               encode_task_done(done))) {
            return finish(2);
          }
          break;
        }
        case MsgType::kSubtaskAssign: {
          SubtaskAssignMsg msg;
          if (!decode_subtask_assign(frame.payload, msg)) return finish(3);
          if (msg.pec >= pecs.pecs.size()) return finish(3);
          if (hooks == nullptr || hooks->run_subtask == nullptr) {
            return finish(3);  // coordinator armed export we cannot serve
          }
          if (opts.test_worker_task_delay_ms > 0) {
            usleep(static_cast<useconds_t>(opts.test_worker_task_delay_ms) *
                   1000);
          }
          export_armed = msg.export_ok != 0;
          ShardPecResult r;
          try {
            r = hooks->run_subtask(msg.pec, std::move(msg.snaps), exporter);
          } catch (...) {
            return finish(4);
          }
          export_armed = false;
          for (const ViolationMsg& v : r.violations) {
            if (!send_data_frame(io, MsgType::kViolationReport,
                                 encode_violation(v))) {
              return finish(2);
            }
          }
          SubtaskDoneMsg done;
          done.id = msg.id;
          done.pec = to_pec_done(r);
          if (!send_data_frame(io, MsgType::kSubtaskDone,
                               encode_subtask_done(done))) {
            return finish(2);
          }
          break;
        }
        default:
          return finish(3);  // worker never receives reports/results/beats
      }
    }
    if (st == FrameDecoder::Status::kError) return finish(3);
    ++reads;
    if (io.faults.slow_read_at == reads && io.faults.slow_read_ms > 0) {
      // Slow consumer: inbound frames back up while the worker sleeps. The
      // coordinator's dispatch writes must tolerate the full pipe.
      usleep(static_cast<useconds_t>(io.faults.slow_read_ms) * 1000);
    }
    const ssize_t r = read(fd, buf, sizeof(buf));
    if (r > 0) {
      decoder.feed(buf, static_cast<std::size_t>(r));
    } else if (r == 0) {
      return finish(0);  // coordinator went away: orderly orphan exit
    } else if (errno != EINTR) {
      return finish(2);
    }
  }
}

int compute_respawn_backoff_ms(int base_ms, int deaths) {
  // Saturating on purpose: the former `base << shift` overflowed int for a
  // large configured base (INT_MAX base, shift >= 1 → negative), and a
  // negative backoff re-arms the slot immediately — a busy fork loop against
  // a deterministically crashing worker. 64-bit intermediate + clamp keeps
  // every input in [0, 2000].
  const int shift = std::min(deaths > 0 ? deaths - 1 : 0, 6);
  const std::int64_t backoff = static_cast<std::int64_t>(base_ms) << shift;
  return static_cast<int>(std::clamp<std::int64_t>(backoff, 0, 2000));
}

namespace {

constexpr std::size_t kNoSub = std::numeric_limits<std::size_t>::max();

/// The built-in default transport: fork + socketpair, children inheriting
/// the whole plan by copy-on-write. Lives here rather than transport.cpp
/// because start() must close the coordinator's other live worker fds inside
/// the child — it needs a view of the slot table at fork time.
class ForkWorkerTransport final : public WorkerTransport {
 public:
  ForkWorkerTransport(
      const Network& net, const PecSet& pecs, std::size_t task_count,
      const ShardRunOptions& opts,
      const std::function<std::vector<ShardPecResult>(std::size_t,
                                                      OutcomeStore&)>& body,
      const ShardExportHooks* hooks, std::function<std::vector<int>()> open_fds)
      : net_(net),
        pecs_(pecs),
        task_count_(task_count),
        opts_(opts),
        body_(body),
        hooks_(hooks),
        open_fds_(std::move(open_fds)) {}

  [[nodiscard]] const char* name() const override { return "fork"; }

  int start(std::size_t slot, int generation, pid_t& pid) override {
    pid = -1;
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return -1;
    std::fflush(nullptr);  // no duplicated stdio buffers in the child
    const pid_t child = fork();
    if (child < 0) {
      close(sv[0]);
      close(sv[1]);
      return -1;
    }
    if (child == 0) {
      close(sv[0]);
      for (const int fd : open_fds_()) close(fd);  // not ours to hold
      _exit(run_worker_session(sv[1], static_cast<int>(slot), generation, net_,
                               pecs_, task_count_, opts_, body_, hooks_));
    }
    close(sv[1]);
    pid = child;
    return sv[0];
  }

  void terminate(std::size_t, pid_t pid) override {
    if (pid > 0) kill(pid, SIGKILL);
  }

  void reap(std::size_t, pid_t pid) override {
    if (pid > 0) {
      int status = 0;
      (void)waitpid(pid, &status, 0);
    }
  }

 private:
  const Network& net_;
  const PecSet& pecs_;
  std::size_t task_count_;
  const ShardRunOptions& opts_;
  const std::function<std::vector<ShardPecResult>(std::size_t, OutcomeStore&)>&
      body_;
  const ShardExportHooks* hooks_;
  std::function<std::vector<int>()> open_fds_;
};

struct WorkerSlot {
  pid_t pid = -1;  ///< -1 for transports without a local process (TCP)
  int fd = -1;
  bool alive = false;
  std::size_t current = kNoTask;
  std::size_t current_sub = kNoSub;  ///< in-flight export subtask index
  bool export_armed = false;  ///< current (sub)task may send kSplitExport
  std::vector<std::uint8_t> delivered;  ///< per-PecId: outcomes on the worker
  std::deque<PecId> pending_evictions;  ///< piggybacked on the next assign
  std::vector<ViolationMsg> stash;      ///< violations of the in-flight task
  FrameDecoder decoder{kDefaultMaxFramePayload};

  // -- supervision ----------------------------------------------------------
  int generation = 0;  ///< respawn count of this slot (FaultPlan scoping)
  std::chrono::steady_clock::time_point assigned_at{};  ///< current task start
  std::chrono::steady_clock::time_point last_beat{};    ///< last kHeartbeat
  std::uint64_t last_progress = 0;  ///< progress counter at last change
  std::chrono::steady_clock::time_point last_progress_time{};
  bool probed = false;  ///< soft-deadline probe already fired for this task
  std::chrono::steady_clock::time_point respawn_after{};  ///< backoff gate
  /// Consecutive start() failures since the last successful spawn — a remote
  /// worker that is down paces the reconnect attempts up the same
  /// exponential ladder as crash respawns instead of hammering every 200 ms.
  int start_failures = 0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

ShardRunResult run_sharded_task_graph(
    const Network& net, const PecSet& pecs, const ShardRunOptions& opts,
    const TaskGraph& graph, const std::vector<ShardTaskSpec>& tasks,
    const std::function<std::vector<ShardPecResult>(
        std::size_t task, OutcomeStore& upstream)>& body,
    WorkerTransport* transport, const ShardExportHooks* hooks) {
  ShardRunResult result;
  const std::size_t total = graph.size();
  const int shards = std::max(1, opts.shards);
  result.stats.tasks_per_shard.assign(static_cast<std::size_t>(shards), 0);
  if (tasks.size() != total) {
    result.error = "task spec count does not match graph size";
    return result;
  }
  if (total == 0) {
    result.ok = true;
    return result;
  }

  std::vector<std::size_t> waiting = graph.waiting_on;
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < total; ++i) {
    if (waiting[i] == 0) ready.push_back(i);
  }

  // dep_refs[pec] = incomplete tasks that still need pec's outcomes; when it
  // hits zero the coordinator drops its wire copy and tells every worker
  // holding a delivered copy to evict (bounded stores on all sides).
  std::map<PecId, std::size_t> dep_refs;
  for (const ShardTaskSpec& t : tasks) {
    for (const PecId p : t.deps) ++dep_refs[p];
  }
  std::map<PecId, std::string> outcome_wire;

  std::vector<WorkerSlot> workers(static_cast<std::size_t>(shards));
  std::vector<int> reassignments(total, 0);

  ForkWorkerTransport fork_transport(
      net, pecs, total, opts, body, hooks, [&workers]() {
        std::vector<int> fds;
        for (const WorkerSlot& w : workers) {
          if (w.alive && w.fd >= 0) fds.push_back(w.fd);
        }
        return fds;
      });
  WorkerTransport* const tp = transport != nullptr ? transport : &fork_transport;

  const auto spawn_worker = [&](std::size_t slot) -> bool {
    WorkerSlot& w = workers[slot];
    pid_t pid = -1;
    const int fd = tp->start(slot, w.generation, pid);
    if (fd < 0) return false;
    w.start_failures = 0;
    const int flags = fcntl(fd, F_GETFL, 0);
    (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    w.pid = pid;
    w.fd = fd;
    w.alive = true;
    w.current = kNoTask;
    w.current_sub = kNoSub;
    w.export_armed = false;
    w.delivered.assign(pecs.pecs.size(), 0);
    w.pending_evictions.clear();
    w.stash.clear();
    w.decoder = FrameDecoder(opts.max_frame_payload);
    ++w.generation;
    const auto now = std::chrono::steady_clock::now();
    w.assigned_at = now;
    w.last_beat = now;
    w.last_progress = 0;
    w.last_progress_time = now;
    w.probed = false;
    return true;
  };

  std::size_t completed = 0;
  std::size_t inflight = 0;
  bool stopping = false;

  // -- intra-PEC work export bookkeeping -------------------------------------
  // A worker on an export-armed single-PEC task may donate frontier halves
  // (kSplitExport); each donation becomes an ExportSubtask redispatched to an
  // idle worker. The donor removed those states from its own frontier, so an
  // accepted export is load-bearing: the PEC's verdict is the fold of the
  // donor's base result and every subtask result, emitted only once all of
  // them landed. Donor death invalidates the current epoch — the re-run base
  // explores from the root again, so old-epoch subtasks are redundant and
  // their results are dropped as stale rather than double-counted.
  struct ExportSubtask {
    PecId pec = 0;
    std::uint32_t epoch = 0;
    std::vector<StateSnapshot> snaps;
    int reassignments = 0;
  };
  struct PecExport {
    std::uint32_t epoch = 0;
    std::size_t outstanding = 0;  ///< current-epoch subtasks queued + running
    bool base_done = false;
    std::uint64_t accepted = 0;  ///< lifetime accepts, for the arming cap
    ShardPecResult merged;
  };
  std::vector<ExportSubtask> subtasks;
  std::deque<std::size_t> sub_ready;
  std::size_t sub_inflight = 0;
  std::map<PecId, PecExport> exports;

  const std::uint64_t export_cap =
      opts.export_max_per_pec > 0
          ? static_cast<std::uint64_t>(opts.export_max_per_pec)
          : std::numeric_limits<std::uint64_t>::max();
  const auto may_arm = [&](PecId pec) -> bool {
    if (!opts.split_export) return false;
    const auto it = exports.find(pec);
    return it == exports.end() || it->second.accepted < export_cap;
  };

  const auto fold_pec_result = [](ShardPecResult& into,
                                  const ShardPecResult& sub) {
    into.holds = into.holds && sub.holds;
    into.timed_out |= sub.timed_out;
    into.state_limit_hit |= sub.state_limit_hit;
    into.memory_limit_hit |= sub.memory_limit_hit;
    if (into.budget_tripped == BudgetKind::kNone) {
      into.budget_tripped = sub.budget_tripped;
    }
    into.exhaustive = into.exhaustive && sub.exhaustive;
    into.stats.absorb(sub.stats);
    for (const ViolationMsg& v : sub.violations) into.violations.push_back(v);
  };

  const auto emit_export = [&](PecId pec) {
    const auto it = exports.find(pec);
    PecExport& ex = it->second;
    // Donor and subtasks each run a fresh visited set, so both sides can
    // rediscover the same violation through sleep-covered siblings — emit a
    // deduplicated set, sorted for a completion-order-independent report.
    auto& vs = ex.merged.violations;
    const auto key = [](const ViolationMsg& v) {
      return std::tie(v.failed_links, v.message, v.trail_text);
    };
    std::sort(vs.begin(), vs.end(),
              [&key](const ViolationMsg& a, const ViolationMsg& b) {
                return key(a) < key(b);
              });
    vs.erase(std::unique(vs.begin(), vs.end(),
                         [&key](const ViolationMsg& a, const ViolationMsg& b) {
                           return key(a) == key(b);
                         }),
             vs.end());
    result.reports.push_back(std::move(ex.merged));
    exports.erase(it);
  };

  const auto handle_worker_death = [&](std::size_t slot) {
    WorkerSlot& w = workers[slot];
    if (!w.alive) return;
    w.alive = false;
    close(w.fd);
    w.fd = -1;
    tp->reap(slot, w.pid);
    w.pid = -1;
    if (w.current != kNoTask) {
      --inflight;
      ++result.stats.tasks_reassigned;
      if (++reassignments[w.current] > opts.max_reassignments_per_task) {
        stopping = true;
        result.error = "task " + std::to_string(w.current) +
                       " exceeded the reassignment cap (worker keeps dying)";
      } else {
        ready.push_front(w.current);  // rescue the in-flight task
      }
      // The donor of an exporting PEC died: its re-run explores from the
      // root, covering everything the lost run and its subtasks would have.
      // Bump the epoch so current subtasks turn stale (queued entries are
      // skipped lazily at dispatch; running ones at completion).
      const ShardTaskSpec& spec = tasks[w.current];
      if (spec.pecs.size() == 1) {
        const auto it = exports.find(spec.pecs[0]);
        if (it != exports.end() && !it->second.base_done) {
          PecExport& ex = it->second;
          ++ex.epoch;
          ex.outstanding = 0;
          ex.merged = ShardPecResult{};
          ex.merged.pec = spec.pecs[0];
        }
      }
      w.current = kNoTask;
    }
    if (w.current_sub != kNoSub) {
      --sub_inflight;
      ExportSubtask& sub = subtasks[w.current_sub];
      const auto it = exports.find(sub.pec);
      if (it != exports.end() && it->second.epoch == sub.epoch) {
        // A live subtask died with its worker; the coordinator still holds
        // the snapshots, so requeue under the same reassignment cap tasks
        // get — losing it would silently drop coverage of the donor PEC.
        ++result.stats.tasks_reassigned;
        if (++sub.reassignments > opts.max_reassignments_per_task) {
          stopping = true;
          result.error = "export subtask of pec " + std::to_string(sub.pec) +
                         " exceeded the reassignment cap (worker keeps dying)";
        } else {
          sub_ready.push_front(w.current_sub);
        }
      } else {
        ++result.stats.subtasks_stale;
      }
      w.current_sub = kNoSub;
    }
    w.export_armed = false;
    w.stash.clear();
    // Exponential respawn backoff: the k-th death of this slot gates its
    // respawn by base << min(k-1, 6), saturating and capped at 2 s, so a
    // flapping worker (deterministic crash, bad host) cannot monopolize the
    // coordinator with fork storms. generation was already bumped at spawn,
    // so the first death backs off by the base alone.
    const int deaths = w.generation;  // spawns so far == deaths now
    const int backoff = compute_respawn_backoff_ms(opts.respawn_backoff_ms,
                                                   deaths);
    w.respawn_after = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(backoff);
  };

  const auto poison_worker = [&](std::size_t slot, const char* why) {
    ++result.stats.decode_errors;
    std::fprintf(stderr, "plankton shard coordinator: worker %zu poisoned (%s)\n",
                 slot, why);
    tp->terminate(slot, workers[slot].pid);
    handle_worker_death(slot);
  };

  const auto release_dep_ref = [&](PecId p) {
    const auto it = dep_refs.find(p);
    if (it == dep_refs.end() || --it->second > 0) return;
    dep_refs.erase(it);
    outcome_wire.erase(p);
    for (WorkerSlot& w : workers) {
      if (w.alive && w.delivered[p] != 0) w.pending_evictions.push_back(p);
    }
  };

  /// Ships the missing upstream outcomes plus the assignment to one worker.
  /// false = the worker died underneath us; the task stays undispatched.
  const auto try_dispatch = [&](std::size_t task, std::size_t slot) -> bool {
    WorkerSlot& w = workers[slot];
    std::string out;
    for (const PecId dep : tasks[task].deps) {
      if (w.delivered[dep] != 0) {
        ++result.stats.deliveries_skipped;
        continue;
      }
      // A dependency that recorded no outcomes has nothing to ship — mark it
      // delivered anyway so we never re-check.
      const auto it = outcome_wire.find(dep);
      if (it != outcome_wire.end()) {
        OutcomeDeliveryMsg od;
        od.pec = dep;
        od.outcomes_wire = it->second;
        const std::string payload = encode_outcome_delivery(od);
        encode_frame(out, MsgType::kOutcomeDelivery, payload);
        result.stats.outcome_bytes_sent += payload.size();
        ++result.stats.frames_sent;
      }
      w.delivered[dep] = 1;
    }
    TaskAssignMsg assign;
    assign.task = task;
    assign.export_ok = tasks[task].export_eligible &&
                               tasks[task].pecs.size() == 1 &&
                               may_arm(tasks[task].pecs[0])
                           ? 1
                           : 0;
    while (!w.pending_evictions.empty()) {
      const PecId p = w.pending_evictions.front();
      w.pending_evictions.pop_front();
      w.delivered[p] = 0;
      assign.evict.push_back(p);
    }
    encode_frame(out, MsgType::kTaskAssign, encode_task_assign(assign));
    ++result.stats.frames_sent;
    result.stats.bytes_sent += out.size();
    bool stalled = false;
    if (!write_all(w.fd, out, &stalled)) {
      if (stalled) ++result.stats.write_timeouts;
      handle_worker_death(slot);
      return false;
    }
    w.current = task;
    w.export_armed = assign.export_ok != 0;
    const auto now = std::chrono::steady_clock::now();
    w.assigned_at = now;
    w.last_progress_time = now;  // the progress clock restarts per task
    w.probed = false;
    ++inflight;
    if (opts.test_on_assign) {
      opts.test_on_assign(static_cast<int>(slot), w.pid, task);
    }
    return true;
  };

  /// Drains one worker's socket; returns false when the worker died.
  const auto drain_worker = [&](std::size_t slot) -> bool {
    WorkerSlot& w = workers[slot];
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = read(w.fd, buf, sizeof(buf));
      if (r > 0) {
        result.stats.bytes_received += static_cast<std::uint64_t>(r);
        w.decoder.feed(buf, static_cast<std::size_t>(r));
        continue;
      }
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (r < 0 && errno == EINTR) continue;
      handle_worker_death(slot);  // EOF or hard error
      return false;
    }
    Frame frame;
    FrameDecoder::Status st;
    while ((st = w.decoder.next(frame)) == FrameDecoder::Status::kFrame) {
      ++result.stats.frames_received;
      switch (frame.type) {
        case MsgType::kHeartbeat: {
          HeartbeatMsg hb;
          if (!decode_heartbeat(frame.payload, hb)) {
            poison_worker(slot, "bad heartbeat");
            return false;
          }
          ++result.stats.heartbeats;
          const auto now = std::chrono::steady_clock::now();
          w.last_beat = now;
          if (hb.progress != w.last_progress) {
            w.last_progress = hb.progress;
            w.last_progress_time = now;
          }
          break;
        }
        case MsgType::kViolationReport: {
          ViolationMsg v;
          bool links_ok = decode_violation(frame.payload, v);
          for (const LinkId l : v.failed_links) {
            links_ok = links_ok && l < net.topo.link_count();
          }
          if (!links_ok || v.pec >= pecs.pecs.size() ||
              (w.current == kNoTask && w.current_sub == kNoSub)) {
            poison_worker(slot, "bad violation report");
            return false;
          }
          w.stash.push_back(std::move(v));
          break;
        }
        case MsgType::kOutcomeDelivery: {
          OutcomeDeliveryMsg od;
          if (!decode_outcome_delivery(frame.payload, od) ||
              od.pec >= pecs.pecs.size() || w.current == kNoTask) {
            poison_worker(slot, "bad outcome delivery");
            return false;
          }
          // Same quantity as outcome_bytes_sent (the full delivery payload),
          // so the two directions are comparable in the printed stats.
          result.stats.outcome_bytes_received += frame.payload.size();
          w.delivered[od.pec] = 1;  // the producer keeps a local copy
          if (dep_refs.contains(od.pec)) {
            outcome_wire[od.pec] = std::move(od.outcomes_wire);
          }
          break;
        }
        case MsgType::kTaskDone: {
          TaskDoneMsg done;
          bool pecs_ok = decode_task_done(frame.payload, done) &&
                         w.current != kNoTask && done.task == w.current;
          // The completion must cover every PEC of the assigned task exactly
          // once, plus each task PEC's dedup class members exactly once —
          // a member is legitimately absent only when its representative
          // reported a violation under early stop (the worker skips the
          // class tail then, like any unscheduled task). Anything else —
          // unknown PECs, duplicates, a silently dropped member whose
          // verdict is mandatory — would corrupt the merge or swallow
          // stashed violations, so it poisons like malformed input.
          // Sorted lookups keep this O(n log n) per completion.
          if (pecs_ok) {
            const ShardTaskSpec& spec = tasks[w.current];
            std::vector<PecId> allowed = spec.pecs;
            for (const auto& members : spec.class_members) {
              allowed.insert(allowed.end(), members.begin(), members.end());
            }
            std::sort(allowed.begin(), allowed.end());
            std::vector<PecId> seen;
            seen.reserve(done.pecs.size());
            for (const PecDoneMsg& p : done.pecs) seen.push_back(p.pec);
            std::sort(seen.begin(), seen.end());
            pecs_ok = std::adjacent_find(seen.begin(), seen.end()) == seen.end();
            for (const PecId p : seen) {
              pecs_ok = pecs_ok &&
                        std::binary_search(allowed.begin(), allowed.end(), p);
            }
            const auto present = [&seen](PecId p) {
              return std::binary_search(seen.begin(), seen.end(), p);
            };
            for (std::size_t i = 0; pecs_ok && i < spec.pecs.size(); ++i) {
              pecs_ok = present(spec.pecs[i]);
              if (!pecs_ok || i >= spec.class_members.size()) continue;
              // Members are optional only under early stop with a violated
              // representative; every other mode must report them
              // (translated clean holds or native re-runs).
              const PecDoneMsg* rep_done = nullptr;
              for (const PecDoneMsg& p : done.pecs) {
                if (p.pec == spec.pecs[i]) {
                  rep_done = &p;
                  break;
                }
              }
              const bool members_optional =
                  opts.stop_on_violation && rep_done != nullptr &&
                  rep_done->holds == 0;
              if (members_optional) continue;
              for (const PecId m : spec.class_members[i]) {
                pecs_ok = pecs_ok && present(m);
              }
            }
          }
          if (!pecs_ok) {
            poison_worker(slot, "bad task completion");
            return false;
          }
          const std::size_t task = w.current;
          for (const PecDoneMsg& p : done.pecs) {
            ShardPecResult rep;
            rep.pec = p.pec;
            rep.holds = p.holds != 0;
            rep.timed_out = p.timed_out != 0;
            rep.state_limit_hit = p.state_limit_hit != 0;
            rep.memory_limit_hit = p.memory_limit_hit != 0;
            rep.budget_tripped = static_cast<BudgetKind>(p.budget_tripped);
            rep.exhaustive = p.exhaustive != 0;
            rep.translated = p.translated != 0;
            rep.stats = p.stats;
            for (ViolationMsg& v : w.stash) {
              if (v.pec == p.pec) rep.violations.push_back(std::move(v));
            }
            if (!rep.holds && opts.stop_on_violation) stopping = true;
            const auto ex_it = exports.find(p.pec);
            if (ex_it != exports.end() && tasks[task].export_eligible) {
              // Base completion of an exporting PEC: fold it into the
              // pending merge instead of emitting — the PEC's report
              // surfaces only once every current-epoch subtask landed.
              PecExport& ex = ex_it->second;
              fold_pec_result(ex.merged, rep);
              ex.merged.translated = rep.translated;
              ex.base_done = true;
              if (ex.outstanding == 0) emit_export(p.pec);
            } else {
              result.reports.push_back(std::move(rep));
            }
          }
          w.stash.clear();
          w.current = kNoTask;
          w.export_armed = false;
          --inflight;
          ++completed;
          ++result.stats.tasks_per_shard[slot];
          for (const std::size_t d : graph.dependents[task]) {
            if (--waiting[d] == 0) ready.push_back(d);
          }
          for (const PecId dep : tasks[task].deps) release_dep_ref(dep);
          break;
        }
        case MsgType::kSplitExport: {
          SplitExportMsg se;
          if (!decode_split_export(frame.payload, se) ||
              se.pec >= pecs.pecs.size()) {
            poison_worker(slot, "bad split export");
            return false;
          }
          // Only an armed worker running that very PEC may donate; anything
          // else is protocol abuse (an unarmed or idle worker has no
          // frontier the coordinator agreed to track).
          bool valid = w.export_armed;
          bool stale = false;
          if (valid && w.current != kNoTask) {
            valid = tasks[w.current].pecs.size() == 1 &&
                    tasks[w.current].pecs[0] == se.pec;
          } else if (valid && w.current_sub != kNoSub) {
            const ExportSubtask& sub = subtasks[w.current_sub];
            valid = sub.pec == se.pec;
            const auto it = exports.find(se.pec);
            stale = valid &&
                    (it == exports.end() || it->second.epoch != sub.epoch);
          } else {
            valid = false;
          }
          if (!valid) {
            poison_worker(slot, "unexpected split export");
            return false;
          }
          if (stale) {
            // The donor base already re-ran; this sub-donation's states are
            // covered by the fresh epoch. Dropping it is safe, not lossy.
            ++result.stats.subtasks_stale;
            break;
          }
          PecExport& ex = exports[se.pec];  // created on first donation
          if (ex.merged.pec != se.pec) ex.merged.pec = se.pec;
          ++ex.accepted;
          ++result.stats.splits_exported;
          if (se.snaps.empty()) break;
          // Queue even under early stop: the donor shed these states, so an
          // undispatched subtask must keep its PEC's merge pending (the
          // partial verdict would otherwise read as a clean exhaustive
          // hold). Under `stopping` the merge simply never emits, exactly
          // like any unscheduled task's missing report.
          std::uint32_t epoch = ex.epoch;
          if (w.current_sub != kNoSub) epoch = subtasks[w.current_sub].epoch;
          subtasks.push_back(
              ExportSubtask{se.pec, epoch, std::move(se.snaps), 0});
          sub_ready.push_back(subtasks.size() - 1);
          ++ex.outstanding;
          break;
        }
        case MsgType::kSubtaskDone: {
          SubtaskDoneMsg sd;
          if (!decode_subtask_done(frame.payload, sd) ||
              w.current_sub == kNoSub || sd.id != w.current_sub ||
              sd.pec.pec != subtasks[w.current_sub].pec) {
            poison_worker(slot, "bad subtask completion");
            return false;
          }
          const std::size_t id = w.current_sub;
          const ExportSubtask& sub = subtasks[id];
          w.current_sub = kNoSub;
          w.export_armed = false;
          --sub_inflight;
          ShardPecResult rep;
          rep.pec = sd.pec.pec;
          rep.holds = sd.pec.holds != 0;
          rep.timed_out = sd.pec.timed_out != 0;
          rep.state_limit_hit = sd.pec.state_limit_hit != 0;
          rep.memory_limit_hit = sd.pec.memory_limit_hit != 0;
          rep.budget_tripped = static_cast<BudgetKind>(sd.pec.budget_tripped);
          rep.exhaustive = sd.pec.exhaustive != 0;
          rep.stats = sd.pec.stats;
          for (ViolationMsg& v : w.stash) {
            if (v.pec == rep.pec) rep.violations.push_back(std::move(v));
          }
          w.stash.clear();
          ++result.stats.tasks_per_shard[slot];
          const auto it = exports.find(sub.pec);
          if (it == exports.end() || it->second.epoch != sub.epoch) {
            ++result.stats.subtasks_stale;  // donor re-ran from the root
            break;
          }
          if (!rep.holds && opts.stop_on_violation) stopping = true;
          PecExport& ex = it->second;
          fold_pec_result(ex.merged, rep);
          ++result.stats.subtasks_completed;
          --ex.outstanding;
          if (ex.base_done && ex.outstanding == 0) emit_export(sub.pec);
          break;
        }
        default:
          poison_worker(slot, "unexpected message from worker");
          return false;
      }
    }
    if (st == FrameDecoder::Status::kError) {
      poison_worker(slot, w.decoder.error().c_str());
      return false;
    }
    return true;
  };

  for (std::size_t s = 0; s < workers.size(); ++s) {
    if (!spawn_worker(s)) {
      result.error = "failed to spawn shard worker";
      break;
    }
  }

  while (result.error.empty()) {
    // Dispatch: lowest-index ready task to the idle worker already holding
    // most of its upstream outcomes (ties to the lowest slot).
    while (!stopping && !ready.empty()) {
      std::size_t best = workers.size();
      std::size_t best_overlap = 0;
      const std::size_t task = ready.front();
      for (std::size_t s = 0; s < workers.size(); ++s) {
        const WorkerSlot& w = workers[s];
        if (!w.alive || w.current != kNoTask) continue;
        std::size_t overlap = 0;
        for (const PecId dep : tasks[task].deps) {
          overlap += w.delivered[dep] != 0 ? 1 : 0;
        }
        if (best == workers.size() || overlap > best_overlap) {
          best = s;
          best_overlap = overlap;
        }
      }
      if (best == workers.size()) break;  // everyone busy (or dead)
      ready.pop_front();
      if (!try_dispatch(task, best)) ready.push_front(task);
    }

    // Export subtasks fill in behind the task queue: donated frontier halves
    // go to whichever worker is idle (lowest slot; no upstream outcomes to
    // colocate). Stale entries — their donor died and re-ran — drain here.
    while (!stopping && !sub_ready.empty()) {
      const std::size_t id = sub_ready.front();
      const auto ex_it = exports.find(subtasks[id].pec);
      if (ex_it == exports.end() ||
          ex_it->second.epoch != subtasks[id].epoch) {
        sub_ready.pop_front();
        ++result.stats.subtasks_stale;
        continue;
      }
      std::size_t best = workers.size();
      for (std::size_t s = 0; s < workers.size(); ++s) {
        const WorkerSlot& w = workers[s];
        if (w.alive && w.current == kNoTask && w.current_sub == kNoSub) {
          best = s;
          break;
        }
      }
      if (best == workers.size()) break;  // everyone busy (or dead)
      sub_ready.pop_front();
      WorkerSlot& w = workers[best];
      SubtaskAssignMsg sa;
      sa.id = id;
      sa.pec = subtasks[id].pec;
      sa.export_ok = may_arm(sa.pec) ? 1 : 0;
      sa.snaps = subtasks[id].snaps;  // keep a copy for crash reassignment
      std::string out;
      encode_frame(out, MsgType::kSubtaskAssign, encode_subtask_assign(sa));
      ++result.stats.frames_sent;
      result.stats.bytes_sent += out.size();
      bool stalled = false;
      if (!write_all(w.fd, out, &stalled)) {
        if (stalled) ++result.stats.write_timeouts;
        handle_worker_death(best);
        sub_ready.push_front(id);  // never reached the worker: not a death
        continue;
      }
      w.current_sub = id;
      w.export_armed = sa.export_ok != 0;
      const auto now = std::chrono::steady_clock::now();
      w.assigned_at = now;
      w.last_progress_time = now;
      w.probed = false;
      ++sub_inflight;
      ++result.stats.subtasks_dispatched;
    }

    if (inflight == 0 && sub_inflight == 0 &&
        ((ready.empty() && sub_ready.empty()) || stopping)) {
      break;
    }

    // Supervision: the escalation ladder over every in-flight task. With
    // heartbeats on, liveness has two independent signals — the beacon
    // itself (a wedged worker holding the frame-write lock goes silent) and
    // the exploration progress counter the beacons carry (an alive worker
    // stuck outside exploration beats on with a flat counter). Soft
    // deadline: one probe, recorded and logged, no action — slow workers
    // that still advance are left alone. Hard deadline on either signal:
    // SIGKILL into the same reap/reassign path a crash takes.
    if (opts.heartbeat_interval_ms > 0 && opts.hard_deadline_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      const auto soft = std::chrono::milliseconds(opts.soft_deadline_ms);
      const auto hard = std::chrono::milliseconds(opts.hard_deadline_ms);
      for (std::size_t s = 0; s < workers.size(); ++s) {
        WorkerSlot& w = workers[s];
        if (!w.alive || (w.current == kNoTask && w.current_sub == kNoSub)) {
          continue;
        }
        const std::size_t label = w.current != kNoTask ? w.current
                                                       : w.current_sub;
        const char* kind = w.current != kNoTask ? "task" : "subtask";
        const auto beat_age = now - w.last_beat;
        const auto progress_age = now - w.last_progress_time;
        if (beat_age > hard || progress_age > hard) {
          ++result.stats.hang_kills;
          std::fprintf(stderr,
                       "plankton shard coordinator: worker %zu stuck on %s "
                       "%zu (%s for %lldms), killing\n",
                       s, kind, label,
                       beat_age > hard ? "no heartbeat" : "no progress",
                       static_cast<long long>(
                           std::chrono::duration_cast<std::chrono::milliseconds>(
                               beat_age > hard ? beat_age : progress_age)
                               .count()));
          tp->terminate(s, w.pid);
          handle_worker_death(s);
          continue;
        }
        if (!w.probed && (beat_age > soft || progress_age > soft)) {
          w.probed = true;
          ++result.stats.progress_probes;
          std::fprintf(stderr,
                       "plankton shard coordinator: worker %zu slow on %s "
                       "%zu (probe; hard deadline %dms)\n",
                       s, kind, label, opts.hard_deadline_ms);
        }
      }
      if (!result.error.empty()) break;  // a hang-kill exhausted the cap
    }

    // Crash recovery: keep the pool at full strength while work remains,
    // honoring each slot's respawn backoff (a flapping slot waits it out).
    bool any_alive = false;
    bool any_backing_off = false;
    const auto respawn_now = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < workers.size() && result.error.empty(); ++s) {
      if (workers[s].alive) {
        any_alive = true;
        continue;
      }
      if (ready.empty() && inflight == 0 && sub_ready.empty() &&
          sub_inflight == 0) {
        continue;
      }
      if (respawn_now < workers[s].respawn_after) {
        any_backing_off = true;
        continue;
      }
      if (spawn_worker(s)) {
        ++result.stats.workers_respawned;
        any_alive = true;
      } else {
        if (!any_alive && !any_backing_off && s + 1 == workers.size()) {
          result.error = "cannot respawn any shard worker";
        }
        // A failed start (fork pressure, remote worker still down) climbs
        // the same capped exponential ladder as crash respawns: a TCP
        // worker that is down for a while is probed at 200, 400, ... 2000 ms
        // instead of hammered every poll slice, and reconnects promptly
        // once it is back (the cap bounds the worst-case refill delay).
        workers[s].respawn_after =
            respawn_now + std::chrono::milliseconds(compute_respawn_backoff_ms(
                              200, ++workers[s].start_failures));
      }
    }
    if (!result.error.empty()) break;

    std::vector<pollfd> pfds;
    std::vector<std::size_t> slot_of;
    for (std::size_t s = 0; s < workers.size(); ++s) {
      if (!workers[s].alive) continue;
      pfds.push_back({workers[s].fd, POLLIN, 0});
      slot_of.push_back(s);
    }
    // Poll in slices no coarser than the heartbeat cadence so supervision
    // reacts within about one interval (and an all-dead pool in backoff
    // still sleeps instead of spinning).
    int poll_ms = 200;
    if (opts.heartbeat_interval_ms > 0) {
      poll_ms = std::clamp(opts.heartbeat_interval_ms, 10, 200);
    }
    const int n = poll(pfds.empty() ? nullptr : pfds.data(),
                       static_cast<nfds_t>(pfds.size()), poll_ms);
    if (n < 0 && errno != EINTR) {
      result.error = "poll failed";
      break;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        (void)drain_worker(slot_of[i]);
      }
    }
  }

  // Shutdown: orderly for live workers, forceful on the error path (they may
  // be mid-task and deaf to the socket).
  std::string bye;
  encode_frame(bye, MsgType::kShutdown, "");
  for (std::size_t s = 0; s < workers.size(); ++s) {
    WorkerSlot& w = workers[s];
    if (!w.alive) continue;
    if (!result.error.empty()) {
      tp->terminate(s, w.pid);
    } else {
      (void)write_all(w.fd, bye);
      ++result.stats.frames_sent;
      result.stats.bytes_sent += bye.size();
    }
    close(w.fd);
    w.fd = -1;
    tp->reap(s, w.pid);
    w.pid = -1;
    w.alive = false;
  }

  result.stopped_early = stopping && result.error.empty();
  result.ok = result.error.empty();
  return result;
}

}  // namespace plankton::sched
