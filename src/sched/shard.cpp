#include "sched/shard.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <thread>

#include "checker/progress.hpp"
#include "config/network.hpp"

#include "sched/wire.hpp"

namespace plankton::sched {
namespace {

using wire::fits;
using wire::get_int;
using wire::get_string;
using wire::put_int;
using wire::put_string;

void put_stats(std::string& out, const SearchStats& s) {
  put_int(out, s.states_explored);
  put_int(out, s.states_stored);
  put_int(out, s.revisits_skipped);
  put_int(out, s.converged_states);
  put_int(out, s.policy_checks);
  put_int(out, s.suppressed_checks);
  put_int(out, s.pruned_inconsistent);
  put_int(out, s.det_steps);
  put_int(out, s.nondet_branches);
  put_int(out, s.failure_sets);
  put_int(out, s.ad_cache_hits);
  put_int(out, s.ad_cache_misses);
  put_int(out, s.dirty_refreshes);
  put_int(out, s.por_pruned);
  put_int(out, s.por_source_sets);
  put_int(out, static_cast<std::int64_t>(s.por_footprint_time.count()));
  put_int(out, s.frontier_peak);
  put_int(out, s.budget_checks);
  put_int(out, s.max_depth);
  put_int(out, static_cast<std::uint64_t>(s.bytes_paths));
  put_int(out, static_cast<std::uint64_t>(s.bytes_routes));
  put_int(out, static_cast<std::uint64_t>(s.bytes_visited));
  put_int(out, static_cast<std::uint64_t>(s.bytes_stack_peak));
  put_int(out, static_cast<std::uint64_t>(s.bytes_ad_cache));
  put_int(out, static_cast<std::int64_t>(s.elapsed.count()));
}

bool get_stats(std::string_view& in, SearchStats& s) {
  std::uint64_t sz[5] = {};
  std::int64_t ns = 0;
  std::int64_t por_ns = 0;
  const bool ok =
      get_int(in, s.states_explored) && get_int(in, s.states_stored) &&
      get_int(in, s.revisits_skipped) && get_int(in, s.converged_states) &&
      get_int(in, s.policy_checks) && get_int(in, s.suppressed_checks) &&
      get_int(in, s.pruned_inconsistent) && get_int(in, s.det_steps) &&
      get_int(in, s.nondet_branches) && get_int(in, s.failure_sets) &&
      get_int(in, s.ad_cache_hits) && get_int(in, s.ad_cache_misses) &&
      get_int(in, s.dirty_refreshes) && get_int(in, s.por_pruned) &&
      get_int(in, s.por_source_sets) && get_int(in, por_ns) &&
      get_int(in, s.frontier_peak) && get_int(in, s.budget_checks) &&
      get_int(in, s.max_depth) && get_int(in, sz[0]) && get_int(in, sz[1]) &&
      get_int(in, sz[2]) && get_int(in, sz[3]) && get_int(in, sz[4]) &&
      get_int(in, ns);
  if (!ok) return false;
  s.por_footprint_time = std::chrono::nanoseconds(por_ns);
  s.bytes_paths = static_cast<std::size_t>(sz[0]);
  s.bytes_routes = static_cast<std::size_t>(sz[1]);
  s.bytes_visited = static_cast<std::size_t>(sz[2]);
  s.bytes_stack_peak = static_cast<std::size_t>(sz[3]);
  s.bytes_ad_cache = static_cast<std::size_t>(sz[4]);
  s.elapsed = std::chrono::nanoseconds(ns);
  return true;
}

// -- robust fd I/O ----------------------------------------------------------

/// A peer that accepts nothing for this long is presumed wedged: the write
/// degrades to a transport error (→ the reassignment path) instead of
/// spinning forever. Polls ride in short slices so the budget is accurate.
constexpr int kWriteStallBudgetMs = 10000;
constexpr int kWritePollSliceMs = 100;
/// EINTR ceiling per write_all call: a signal storm must not become an
/// unbounded retry loop either.
constexpr int kMaxEintrRetries = 1024;

/// Writes everything, riding out EINTR/EAGAIN with *bounded* retries (the
/// coordinator keeps its ends non-blocking so it can also drain without
/// blocking). MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the
/// process. On failure, `stalled` (when given) reports whether the give-up
/// was a retry-budget exhaustion rather than a hard socket error.
/// `synthetic_eintr` injects that many fake EINTR results before the first
/// real send — the FaultPlan eintr@N storm, driving the same retry
/// accounting a real signal storm would.
bool write_all(int fd, const char* data, std::size_t n, bool* stalled = nullptr,
               std::uint32_t synthetic_eintr = 0) {
  if (stalled != nullptr) *stalled = false;
  int stalled_ms = 0;
  int eintr_count = 0;
  while (n > 0) {
    if (synthetic_eintr > 0) {
      --synthetic_eintr;
      if (++eintr_count > kMaxEintrRetries) {
        if (stalled != nullptr) *stalled = true;
        return false;
      }
      continue;
    }
    const ssize_t w = send(fd, data, n, MSG_NOSIGNAL);
    if (w > 0) {
      data += w;
      n -= static_cast<std::size_t>(w);
      stalled_ms = 0;
      eintr_count = 0;
      continue;
    }
    if (w < 0 && errno == EINTR) {
      if (++eintr_count > kMaxEintrRetries) {
        if (stalled != nullptr) *stalled = true;
        return false;
      }
      continue;
    }
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (stalled_ms >= kWriteStallBudgetMs) {
        if (stalled != nullptr) *stalled = true;
        return false;
      }
      pollfd pfd{fd, POLLOUT, 0};
      (void)poll(&pfd, 1, kWritePollSliceMs);
      stalled_ms += kWritePollSliceMs;
      continue;
    }
    return false;
  }
  return true;
}

bool write_all(int fd, const std::string& s, bool* stalled = nullptr) {
  return write_all(fd, s.data(), s.size(), stalled);
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

void encode_frame(std::string& out, MsgType type, std::string_view payload) {
  put_int(out, kFrameMagic);
  put_int(out, kFrameVersion);
  put_int(out, static_cast<std::uint16_t>(type));
  put_int(out, static_cast<std::uint64_t>(payload.size()));
  out.append(payload);
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (failed_) return;
  // Compact lazily: drop consumed bytes once they dominate the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (failed_) return Status::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderBytes) return Status::kNeedMore;
  std::string_view hdr(buf_.data() + pos_, kFrameHeaderBytes);
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  std::uint16_t type = 0;
  std::uint64_t len = 0;
  (void)get_int(hdr, magic);
  (void)get_int(hdr, version);
  (void)get_int(hdr, type);
  (void)get_int(hdr, len);
  const auto poison = [this](const char* why) {
    failed_ = true;
    error_ = why;
    return Status::kError;
  };
  if (magic != kFrameMagic) return poison("bad frame magic");
  if (version != kFrameVersion) return poison("unsupported frame version");
  if (type < static_cast<std::uint16_t>(MsgType::kTaskAssign) ||
      type > static_cast<std::uint16_t>(MsgType::kCacheStats)) {
    return poison("unknown message type");
  }
  // Stream-state machine: kShutdown is terminal. Anything framed after it
  // (a late kHeartbeat from a confused worker, injected bytes on the serve
  // socket) is a protocol violation, not data to process.
  if (shutdown_seen_) return poison("frame after shutdown");
  if (len > max_payload_) return poison("frame payload exceeds limit");
  if (avail - kFrameHeaderBytes < len) return Status::kNeedMore;
  out.type = static_cast<MsgType>(type);
  if (out.type == MsgType::kShutdown) shutdown_seen_ = true;
  out.payload.assign(buf_.data() + pos_ + kFrameHeaderBytes,
                     static_cast<std::size_t>(len));
  pos_ += kFrameHeaderBytes + static_cast<std::size_t>(len);
  return Status::kFrame;
}

// ---------------------------------------------------------------------------
// Message payload codecs
// ---------------------------------------------------------------------------

std::string encode_task_assign(const TaskAssignMsg& m) {
  std::string out;
  put_int(out, m.task);
  put_int(out, static_cast<std::uint32_t>(m.evict.size()));
  for (const PecId p : m.evict) put_int(out, p);
  return out;
}

bool decode_task_assign(std::string_view in, TaskAssignMsg& out) {
  out = TaskAssignMsg{};
  std::uint32_t n = 0;
  if (!get_int(in, out.task) || !get_int(in, n) || !fits(in, n, sizeof(PecId))) {
    out = TaskAssignMsg{};
    return false;
  }
  out.evict.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_int(in, out.evict[i])) {
      out = TaskAssignMsg{};
      return false;
    }
  }
  if (!in.empty()) {
    out = TaskAssignMsg{};
    return false;
  }
  return true;
}

std::string encode_outcome_delivery(const OutcomeDeliveryMsg& m) {
  std::string out;
  put_int(out, m.pec);
  put_string(out, m.outcomes_wire);
  return out;
}

bool decode_outcome_delivery(std::string_view in, OutcomeDeliveryMsg& out) {
  out = OutcomeDeliveryMsg{};
  if (!get_int(in, out.pec) || !get_string(in, out.outcomes_wire) ||
      !in.empty()) {
    out = OutcomeDeliveryMsg{};
    return false;
  }
  return true;
}

std::string encode_violation(const ViolationMsg& m) {
  std::string out;
  put_int(out, m.pec);
  put_int(out, static_cast<std::uint32_t>(m.failed_links.size()));
  for (const LinkId l : m.failed_links) put_int(out, l);
  put_string(out, m.message);
  put_string(out, m.trail_text);
  return out;
}

bool decode_violation(std::string_view in, ViolationMsg& out) {
  out = ViolationMsg{};
  const auto fail = [&out] {
    out = ViolationMsg{};
    return false;
  };
  std::uint32_t n = 0;
  if (!get_int(in, out.pec) || !get_int(in, n) || !fits(in, n, sizeof(LinkId))) {
    return fail();
  }
  out.failed_links.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!get_int(in, out.failed_links[i])) return fail();
  }
  if (!get_string(in, out.message) || !get_string(in, out.trail_text) ||
      !in.empty()) {
    return fail();
  }
  return true;
}

std::string encode_task_done(const TaskDoneMsg& m) {
  std::string out;
  put_int(out, m.task);
  put_int(out, static_cast<std::uint32_t>(m.pecs.size()));
  for (const PecDoneMsg& p : m.pecs) {
    put_int(out, p.pec);
    put_int(out, p.holds);
    put_int(out, p.timed_out);
    put_int(out, p.state_limit_hit);
    put_int(out, p.memory_limit_hit);
    put_int(out, p.budget_tripped);
    put_int(out, p.exhaustive);
    put_int(out, p.translated);
    put_stats(out, p.stats);
  }
  return out;
}

bool decode_task_done(std::string_view in, TaskDoneMsg& out) {
  out = TaskDoneMsg{};
  const auto fail = [&out] {
    out = TaskDoneMsg{};
    return false;
  };
  std::uint32_t n = 0;
  // One entry's exact wire size: pec (4) + 7 flag bytes + the SearchStats
  // block (25 x 8). Using the full size matters: fits() with a smaller
  // stride would let a lying count amplify resize() far past the bytes
  // present.
  constexpr std::size_t kPecDoneWireBytes = 4 + 7 + 25 * 8;
  if (!get_int(in, out.task) || !get_int(in, n) ||
      !fits(in, n, kPecDoneWireBytes)) {
    return fail();
  }
  out.pecs.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PecDoneMsg& p = out.pecs[i];
    if (!get_int(in, p.pec) || !get_int(in, p.holds) ||
        !get_int(in, p.timed_out) || !get_int(in, p.state_limit_hit) ||
        !get_int(in, p.memory_limit_hit) || !get_int(in, p.budget_tripped) ||
        !get_int(in, p.exhaustive) || !get_int(in, p.translated) ||
        !get_stats(in, p.stats)) {
      return fail();
    }
    if (p.holds > 1 || p.timed_out > 1 || p.state_limit_hit > 1 ||
        p.memory_limit_hit > 1 || p.exhaustive > 1 || p.translated > 1 ||
        p.budget_tripped > static_cast<std::uint8_t>(BudgetKind::kMemory)) {
      return fail();
    }
  }
  if (!in.empty()) return fail();
  return true;
}

std::string encode_heartbeat(const HeartbeatMsg& m) {
  std::string out;
  put_int(out, m.progress);
  return out;
}

bool decode_heartbeat(std::string_view in, HeartbeatMsg& out) {
  out = HeartbeatMsg{};
  if (!get_int(in, out.progress) || !in.empty()) {
    out = HeartbeatMsg{};
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kNoTask = std::numeric_limits<std::size_t>::max();

/// The worker's outbound side: one socket shared by the task loop (data
/// frames) and the heartbeat beacon thread, serialized by `mu` so frames
/// can never interleave mid-frame. `data_frames` counts outbound data frames
/// over the worker's lifetime — the index FaultPlan directives key on.
struct WorkerIo {
  int fd = -1;
  std::mutex mu;
  WorkerFaults faults;
  std::uint64_t data_frames = 0;
};

/// Ships one data frame, acting out any fault the plan schedules for it.
/// false = the coordinator is unreachable (the worker exits).
bool send_data_frame(WorkerIo& io, MsgType type, const std::string& payload) {
  std::string out;
  encode_frame(out, type, payload);
  const std::uint64_t frame_no = ++io.data_frames;
  const WorkerFaults& f = io.faults;
  if (f.hang_at_frame == frame_no && f.hang_ms > 0) {
    // Slow-but-alive: the beacon thread keeps heartbeating (lock not held),
    // so the coordinator must NOT escalate past the probe for this one.
    usleep(static_cast<useconds_t>(f.hang_ms) * 1000);
  }
  std::lock_guard<std::mutex> lock(io.mu);
  if (f.wedge_at_frame == frame_no) {
    // Alive-but-stuck: holding the write lock stalls the beacon thread too,
    // so heartbeats stop — exactly the failure the hard deadline exists for.
    if (f.wedge_ms == 0) {
      for (;;) pause();  // wedge forever; only SIGKILL ends this
    }
    usleep(static_cast<useconds_t>(f.wedge_ms) * 1000);
  }
  if (f.crash_at_frame == frame_no) _exit(9);
  if (f.torn_at_frame == frame_no) {
    // Half a frame, then death: the coordinator's decoder must wait for the
    // rest, see EOF instead, and take the reassignment path — never parse.
    (void)write_all(io.fd, out.data(), out.size() / 2);
    _exit(9);
  }
  if (!f.short_writes) {
    return write_all(io.fd, out.data(), out.size(), nullptr, f.eintr_burst);
  }
  // shortw: dribble the frame out in tiny pieces so the coordinator's
  // decoder reassembles across many reads.
  const char* data = out.data();
  std::size_t n = out.size();
  while (n > 0) {
    const std::size_t chunk = n < 7 ? n : 7;
    if (!write_all(io.fd, data, chunk, nullptr, f.eintr_burst)) return false;
    data += chunk;
    n -= chunk;
  }
  return true;
}

/// Runs inside the forked child; never returns. Exit codes are diagnostic
/// only — the coordinator treats any death identically (reassign + respawn).
/// `slot`/`generation` identify this incarnation to the FaultPlan (a fault
/// fires at generation 0 by default, so the respawn is healthy).
[[noreturn]] void worker_main(
    int fd, int slot, int generation, const Network& net, const PecSet& pecs,
    std::size_t task_count, const ShardRunOptions& opts,
    const std::function<std::vector<ShardPecResult>(std::size_t,
                                                    OutcomeStore&)>& body) {
  static WorkerIo io;  // static: outlives worker_main's scope for the beacon
  io.fd = fd;
  io.faults = opts.fault_plan.for_worker(slot, generation);

  // Heartbeat beacon: a detached thread (the worker only ever exits via
  // _exit, which takes the thread with it) writing liveness + the sampled
  // exploration progress counter on a fixed cadence. It shares the frame
  // write lock with data frames, so a worker wedged holding that lock goes
  // silent — which is the point.
  if (opts.heartbeat_interval_ms > 0) {
    std::thread([interval = opts.heartbeat_interval_ms] {
      for (;;) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval));
        HeartbeatMsg m;
        m.progress = progress_counter().load(std::memory_order_relaxed);
        std::string out;
        encode_frame(out, MsgType::kHeartbeat, encode_heartbeat(m));
        std::lock_guard<std::mutex> lock(io.mu);
        if (!write_all(io.fd, out)) return;  // coordinator went away
      }
    }).detach();
  }

  OutcomeStore store(net, pecs);
  FrameDecoder decoder(opts.max_frame_payload);
  char buf[1 << 16];
  for (;;) {
    Frame frame;
    FrameDecoder::Status st;
    while ((st = decoder.next(frame)) == FrameDecoder::Status::kFrame) {
      switch (frame.type) {
        case MsgType::kShutdown:
          _exit(0);
        case MsgType::kOutcomeDelivery: {
          OutcomeDeliveryMsg msg;
          if (!decode_outcome_delivery(frame.payload, msg)) _exit(3);
          if (msg.pec >= pecs.pecs.size()) _exit(3);  // corrupt wire id
          std::vector<PecOutcome> outs;
          if (!store.deserialize(msg.outcomes_wire, outs)) _exit(3);
          store.put(msg.pec, std::move(outs));
          break;
        }
        case MsgType::kTaskAssign: {
          TaskAssignMsg msg;
          if (!decode_task_assign(frame.payload, msg)) _exit(3);
          if (msg.task >= task_count) _exit(3);  // corrupt wire id
          for (const PecId p : msg.evict) {
            if (p >= pecs.pecs.size()) _exit(3);
            store.evict(p);
          }
          if (opts.test_worker_task_delay_ms > 0) {
            usleep(static_cast<useconds_t>(opts.test_worker_task_delay_ms) *
                   1000);
          }
          std::vector<ShardPecResult> results;
          try {
            results = body(static_cast<std::size_t>(msg.task), store);
          } catch (...) {
            _exit(4);
          }
          TaskDoneMsg done;
          done.task = msg.task;
          for (ShardPecResult& r : results) {
            for (const ViolationMsg& v : r.violations) {
              if (!send_data_frame(io, MsgType::kViolationReport,
                                   encode_violation(v))) {
                _exit(2);
              }
            }
            if (r.record) {
              // The body published the outcomes into the local store (where
              // same-task mates and later tasks on this worker read them);
              // ship that single copy back to the coordinator.
              OutcomeDeliveryMsg od;
              od.pec = r.pec;
              od.outcomes_wire = store.serialize(store.get(r.pec));
              if (!send_data_frame(io, MsgType::kOutcomeDelivery,
                                   encode_outcome_delivery(od))) {
                _exit(2);
              }
            }
            PecDoneMsg pd;
            pd.pec = r.pec;
            pd.holds = r.holds ? 1 : 0;
            pd.timed_out = r.timed_out ? 1 : 0;
            pd.state_limit_hit = r.state_limit_hit ? 1 : 0;
            pd.memory_limit_hit = r.memory_limit_hit ? 1 : 0;
            pd.budget_tripped = static_cast<std::uint8_t>(r.budget_tripped);
            pd.exhaustive = r.exhaustive ? 1 : 0;
            pd.translated = r.translated ? 1 : 0;
            pd.stats = r.stats;
            done.pecs.push_back(pd);
          }
          if (!send_data_frame(io, MsgType::kTaskDone,
                               encode_task_done(done))) {
            _exit(2);
          }
          break;
        }
        default:
          _exit(3);  // worker never receives reports/results/heartbeats
      }
    }
    if (st == FrameDecoder::Status::kError) _exit(3);
    const ssize_t r = read(fd, buf, sizeof(buf));
    if (r > 0) {
      decoder.feed(buf, static_cast<std::size_t>(r));
    } else if (r == 0) {
      _exit(0);  // coordinator went away: orderly orphan exit
    } else if (errno != EINTR) {
      _exit(2);
    }
  }
}

struct WorkerSlot {
  pid_t pid = -1;
  int fd = -1;
  bool alive = false;
  std::size_t current = kNoTask;
  std::vector<std::uint8_t> delivered;  ///< per-PecId: outcomes on the worker
  std::deque<PecId> pending_evictions;  ///< piggybacked on the next assign
  std::vector<ViolationMsg> stash;      ///< violations of the in-flight task
  FrameDecoder decoder{kDefaultMaxFramePayload};

  // -- supervision ----------------------------------------------------------
  int generation = 0;  ///< respawn count of this slot (FaultPlan scoping)
  std::chrono::steady_clock::time_point assigned_at{};  ///< current task start
  std::chrono::steady_clock::time_point last_beat{};    ///< last kHeartbeat
  std::uint64_t last_progress = 0;  ///< progress counter at last change
  std::chrono::steady_clock::time_point last_progress_time{};
  bool probed = false;  ///< soft-deadline probe already fired for this task
  std::chrono::steady_clock::time_point respawn_after{};  ///< backoff gate
};

}  // namespace

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

ShardRunResult run_sharded_task_graph(
    const Network& net, const PecSet& pecs, const ShardRunOptions& opts,
    const TaskGraph& graph, const std::vector<ShardTaskSpec>& tasks,
    const std::function<std::vector<ShardPecResult>(
        std::size_t task, OutcomeStore& upstream)>& body) {
  ShardRunResult result;
  const std::size_t total = graph.size();
  const int shards = std::max(1, opts.shards);
  result.stats.tasks_per_shard.assign(static_cast<std::size_t>(shards), 0);
  if (tasks.size() != total) {
    result.error = "task spec count does not match graph size";
    return result;
  }
  if (total == 0) {
    result.ok = true;
    return result;
  }

  std::vector<std::size_t> waiting = graph.waiting_on;
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < total; ++i) {
    if (waiting[i] == 0) ready.push_back(i);
  }

  // dep_refs[pec] = incomplete tasks that still need pec's outcomes; when it
  // hits zero the coordinator drops its wire copy and tells every worker
  // holding a delivered copy to evict (bounded stores on all sides).
  std::map<PecId, std::size_t> dep_refs;
  for (const ShardTaskSpec& t : tasks) {
    for (const PecId p : t.deps) ++dep_refs[p];
  }
  std::map<PecId, std::string> outcome_wire;

  std::vector<WorkerSlot> workers(static_cast<std::size_t>(shards));
  std::vector<int> reassignments(total, 0);

  const auto spawn_worker = [&](std::size_t slot) -> bool {
    int sv[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
    std::fflush(nullptr);  // no duplicated stdio buffers in the child
    const int generation = workers[slot].generation;
    const pid_t pid = fork();
    if (pid < 0) {
      close(sv[0]);
      close(sv[1]);
      return false;
    }
    if (pid == 0) {
      close(sv[0]);
      for (const WorkerSlot& w : workers) {
        if (w.alive && w.fd >= 0) close(w.fd);  // not ours to hold
      }
      worker_main(sv[1], static_cast<int>(slot), generation, net, pecs, total,
                  opts, body);  // never returns
    }
    close(sv[1]);
    const int flags = fcntl(sv[0], F_GETFL, 0);
    (void)fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);
    WorkerSlot& w = workers[slot];
    w.pid = pid;
    w.fd = sv[0];
    w.alive = true;
    w.current = kNoTask;
    w.delivered.assign(pecs.pecs.size(), 0);
    w.pending_evictions.clear();
    w.stash.clear();
    w.decoder = FrameDecoder(opts.max_frame_payload);
    ++w.generation;
    const auto now = std::chrono::steady_clock::now();
    w.assigned_at = now;
    w.last_beat = now;
    w.last_progress = 0;
    w.last_progress_time = now;
    w.probed = false;
    return true;
  };

  std::size_t completed = 0;
  std::size_t inflight = 0;
  bool stopping = false;

  const auto handle_worker_death = [&](std::size_t slot) {
    WorkerSlot& w = workers[slot];
    if (!w.alive) return;
    w.alive = false;
    close(w.fd);
    w.fd = -1;
    int status = 0;
    (void)waitpid(w.pid, &status, 0);
    w.pid = -1;
    if (w.current != kNoTask) {
      --inflight;
      ++result.stats.tasks_reassigned;
      if (++reassignments[w.current] > opts.max_reassignments_per_task) {
        stopping = true;
        result.error = "task " + std::to_string(w.current) +
                       " exceeded the reassignment cap (worker keeps dying)";
      } else {
        ready.push_front(w.current);  // rescue the in-flight task
      }
      w.current = kNoTask;
    }
    w.stash.clear();
    // Exponential respawn backoff: the k-th death of this slot gates its
    // respawn by base << min(k-1, 6), capped at 2 s, so a flapping worker
    // (deterministic crash, bad host) cannot monopolize the coordinator
    // with fork storms. generation was already bumped at spawn, so the
    // first death backs off by the base alone.
    const int deaths = w.generation;  // spawns so far == deaths now
    const int shift = std::min(deaths > 0 ? deaths - 1 : 0, 6);
    const int backoff =
        std::min(opts.respawn_backoff_ms << shift, 2000);
    w.respawn_after = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(backoff);
  };

  const auto poison_worker = [&](std::size_t slot, const char* why) {
    ++result.stats.decode_errors;
    std::fprintf(stderr, "plankton shard coordinator: worker %zu poisoned (%s)\n",
                 slot, why);
    kill(workers[slot].pid, SIGKILL);
    handle_worker_death(slot);
  };

  const auto release_dep_ref = [&](PecId p) {
    const auto it = dep_refs.find(p);
    if (it == dep_refs.end() || --it->second > 0) return;
    dep_refs.erase(it);
    outcome_wire.erase(p);
    for (WorkerSlot& w : workers) {
      if (w.alive && w.delivered[p] != 0) w.pending_evictions.push_back(p);
    }
  };

  /// Ships the missing upstream outcomes plus the assignment to one worker.
  /// false = the worker died underneath us; the task stays undispatched.
  const auto try_dispatch = [&](std::size_t task, std::size_t slot) -> bool {
    WorkerSlot& w = workers[slot];
    std::string out;
    for (const PecId dep : tasks[task].deps) {
      if (w.delivered[dep] != 0) {
        ++result.stats.deliveries_skipped;
        continue;
      }
      // A dependency that recorded no outcomes has nothing to ship — mark it
      // delivered anyway so we never re-check.
      const auto it = outcome_wire.find(dep);
      if (it != outcome_wire.end()) {
        OutcomeDeliveryMsg od;
        od.pec = dep;
        od.outcomes_wire = it->second;
        const std::string payload = encode_outcome_delivery(od);
        encode_frame(out, MsgType::kOutcomeDelivery, payload);
        result.stats.outcome_bytes_sent += payload.size();
        ++result.stats.frames_sent;
      }
      w.delivered[dep] = 1;
    }
    TaskAssignMsg assign;
    assign.task = task;
    while (!w.pending_evictions.empty()) {
      const PecId p = w.pending_evictions.front();
      w.pending_evictions.pop_front();
      w.delivered[p] = 0;
      assign.evict.push_back(p);
    }
    encode_frame(out, MsgType::kTaskAssign, encode_task_assign(assign));
    ++result.stats.frames_sent;
    result.stats.bytes_sent += out.size();
    bool stalled = false;
    if (!write_all(w.fd, out, &stalled)) {
      if (stalled) ++result.stats.write_timeouts;
      handle_worker_death(slot);
      return false;
    }
    w.current = task;
    const auto now = std::chrono::steady_clock::now();
    w.assigned_at = now;
    w.last_progress_time = now;  // the progress clock restarts per task
    w.probed = false;
    ++inflight;
    if (opts.test_on_assign) {
      opts.test_on_assign(static_cast<int>(slot), w.pid, task);
    }
    return true;
  };

  /// Drains one worker's socket; returns false when the worker died.
  const auto drain_worker = [&](std::size_t slot) -> bool {
    WorkerSlot& w = workers[slot];
    char buf[1 << 16];
    for (;;) {
      const ssize_t r = read(w.fd, buf, sizeof(buf));
      if (r > 0) {
        result.stats.bytes_received += static_cast<std::uint64_t>(r);
        w.decoder.feed(buf, static_cast<std::size_t>(r));
        continue;
      }
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (r < 0 && errno == EINTR) continue;
      handle_worker_death(slot);  // EOF or hard error
      return false;
    }
    Frame frame;
    FrameDecoder::Status st;
    while ((st = w.decoder.next(frame)) == FrameDecoder::Status::kFrame) {
      ++result.stats.frames_received;
      switch (frame.type) {
        case MsgType::kHeartbeat: {
          HeartbeatMsg hb;
          if (!decode_heartbeat(frame.payload, hb)) {
            poison_worker(slot, "bad heartbeat");
            return false;
          }
          ++result.stats.heartbeats;
          const auto now = std::chrono::steady_clock::now();
          w.last_beat = now;
          if (hb.progress != w.last_progress) {
            w.last_progress = hb.progress;
            w.last_progress_time = now;
          }
          break;
        }
        case MsgType::kViolationReport: {
          ViolationMsg v;
          bool links_ok = decode_violation(frame.payload, v);
          for (const LinkId l : v.failed_links) {
            links_ok = links_ok && l < net.topo.link_count();
          }
          if (!links_ok || v.pec >= pecs.pecs.size() || w.current == kNoTask) {
            poison_worker(slot, "bad violation report");
            return false;
          }
          w.stash.push_back(std::move(v));
          break;
        }
        case MsgType::kOutcomeDelivery: {
          OutcomeDeliveryMsg od;
          if (!decode_outcome_delivery(frame.payload, od) ||
              od.pec >= pecs.pecs.size() || w.current == kNoTask) {
            poison_worker(slot, "bad outcome delivery");
            return false;
          }
          // Same quantity as outcome_bytes_sent (the full delivery payload),
          // so the two directions are comparable in the printed stats.
          result.stats.outcome_bytes_received += frame.payload.size();
          w.delivered[od.pec] = 1;  // the producer keeps a local copy
          if (dep_refs.contains(od.pec)) {
            outcome_wire[od.pec] = std::move(od.outcomes_wire);
          }
          break;
        }
        case MsgType::kTaskDone: {
          TaskDoneMsg done;
          bool pecs_ok = decode_task_done(frame.payload, done) &&
                         w.current != kNoTask && done.task == w.current;
          // The completion must cover every PEC of the assigned task exactly
          // once, plus each task PEC's dedup class members exactly once —
          // a member is legitimately absent only when its representative
          // reported a violation under early stop (the worker skips the
          // class tail then, like any unscheduled task). Anything else —
          // unknown PECs, duplicates, a silently dropped member whose
          // verdict is mandatory — would corrupt the merge or swallow
          // stashed violations, so it poisons like malformed input.
          // Sorted lookups keep this O(n log n) per completion.
          if (pecs_ok) {
            const ShardTaskSpec& spec = tasks[w.current];
            std::vector<PecId> allowed = spec.pecs;
            for (const auto& members : spec.class_members) {
              allowed.insert(allowed.end(), members.begin(), members.end());
            }
            std::sort(allowed.begin(), allowed.end());
            std::vector<PecId> seen;
            seen.reserve(done.pecs.size());
            for (const PecDoneMsg& p : done.pecs) seen.push_back(p.pec);
            std::sort(seen.begin(), seen.end());
            pecs_ok = std::adjacent_find(seen.begin(), seen.end()) == seen.end();
            for (const PecId p : seen) {
              pecs_ok = pecs_ok &&
                        std::binary_search(allowed.begin(), allowed.end(), p);
            }
            const auto present = [&seen](PecId p) {
              return std::binary_search(seen.begin(), seen.end(), p);
            };
            for (std::size_t i = 0; pecs_ok && i < spec.pecs.size(); ++i) {
              pecs_ok = present(spec.pecs[i]);
              if (!pecs_ok || i >= spec.class_members.size()) continue;
              // Members are optional only under early stop with a violated
              // representative; every other mode must report them
              // (translated clean holds or native re-runs).
              const PecDoneMsg* rep_done = nullptr;
              for (const PecDoneMsg& p : done.pecs) {
                if (p.pec == spec.pecs[i]) {
                  rep_done = &p;
                  break;
                }
              }
              const bool members_optional =
                  opts.stop_on_violation && rep_done != nullptr &&
                  rep_done->holds == 0;
              if (members_optional) continue;
              for (const PecId m : spec.class_members[i]) {
                pecs_ok = pecs_ok && present(m);
              }
            }
          }
          if (!pecs_ok) {
            poison_worker(slot, "bad task completion");
            return false;
          }
          const std::size_t task = w.current;
          for (const PecDoneMsg& p : done.pecs) {
            ShardPecResult rep;
            rep.pec = p.pec;
            rep.holds = p.holds != 0;
            rep.timed_out = p.timed_out != 0;
            rep.state_limit_hit = p.state_limit_hit != 0;
            rep.memory_limit_hit = p.memory_limit_hit != 0;
            rep.budget_tripped = static_cast<BudgetKind>(p.budget_tripped);
            rep.exhaustive = p.exhaustive != 0;
            rep.translated = p.translated != 0;
            rep.stats = p.stats;
            for (ViolationMsg& v : w.stash) {
              if (v.pec == p.pec) rep.violations.push_back(std::move(v));
            }
            if (!rep.holds && opts.stop_on_violation) stopping = true;
            result.reports.push_back(std::move(rep));
          }
          w.stash.clear();
          w.current = kNoTask;
          --inflight;
          ++completed;
          ++result.stats.tasks_per_shard[slot];
          for (const std::size_t d : graph.dependents[task]) {
            if (--waiting[d] == 0) ready.push_back(d);
          }
          for (const PecId dep : tasks[task].deps) release_dep_ref(dep);
          break;
        }
        default:
          poison_worker(slot, "unexpected message from worker");
          return false;
      }
    }
    if (st == FrameDecoder::Status::kError) {
      poison_worker(slot, w.decoder.error().c_str());
      return false;
    }
    return true;
  };

  for (std::size_t s = 0; s < workers.size(); ++s) {
    if (!spawn_worker(s)) {
      result.error = "failed to spawn shard worker";
      break;
    }
  }

  while (result.error.empty()) {
    // Dispatch: lowest-index ready task to the idle worker already holding
    // most of its upstream outcomes (ties to the lowest slot).
    while (!stopping && !ready.empty()) {
      std::size_t best = workers.size();
      std::size_t best_overlap = 0;
      const std::size_t task = ready.front();
      for (std::size_t s = 0; s < workers.size(); ++s) {
        const WorkerSlot& w = workers[s];
        if (!w.alive || w.current != kNoTask) continue;
        std::size_t overlap = 0;
        for (const PecId dep : tasks[task].deps) {
          overlap += w.delivered[dep] != 0 ? 1 : 0;
        }
        if (best == workers.size() || overlap > best_overlap) {
          best = s;
          best_overlap = overlap;
        }
      }
      if (best == workers.size()) break;  // everyone busy (or dead)
      ready.pop_front();
      if (!try_dispatch(task, best)) ready.push_front(task);
    }

    if (inflight == 0 && (ready.empty() || stopping)) break;

    // Supervision: the escalation ladder over every in-flight task. With
    // heartbeats on, liveness has two independent signals — the beacon
    // itself (a wedged worker holding the frame-write lock goes silent) and
    // the exploration progress counter the beacons carry (an alive worker
    // stuck outside exploration beats on with a flat counter). Soft
    // deadline: one probe, recorded and logged, no action — slow workers
    // that still advance are left alone. Hard deadline on either signal:
    // SIGKILL into the same reap/reassign path a crash takes.
    if (opts.heartbeat_interval_ms > 0 && opts.hard_deadline_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      const auto soft = std::chrono::milliseconds(opts.soft_deadline_ms);
      const auto hard = std::chrono::milliseconds(opts.hard_deadline_ms);
      for (std::size_t s = 0; s < workers.size(); ++s) {
        WorkerSlot& w = workers[s];
        if (!w.alive || w.current == kNoTask) continue;
        const auto beat_age = now - w.last_beat;
        const auto progress_age = now - w.last_progress_time;
        if (beat_age > hard || progress_age > hard) {
          ++result.stats.hang_kills;
          std::fprintf(stderr,
                       "plankton shard coordinator: worker %zu stuck on task "
                       "%zu (%s for %lldms), killing\n",
                       s, w.current,
                       beat_age > hard ? "no heartbeat" : "no progress",
                       static_cast<long long>(
                           std::chrono::duration_cast<std::chrono::milliseconds>(
                               beat_age > hard ? beat_age : progress_age)
                               .count()));
          kill(w.pid, SIGKILL);
          handle_worker_death(s);
          continue;
        }
        if (!w.probed && (beat_age > soft || progress_age > soft)) {
          w.probed = true;
          ++result.stats.progress_probes;
          std::fprintf(stderr,
                       "plankton shard coordinator: worker %zu slow on task "
                       "%zu (probe; hard deadline %dms)\n",
                       s, w.current, opts.hard_deadline_ms);
        }
      }
      if (!result.error.empty()) break;  // a hang-kill exhausted the cap
    }

    // Crash recovery: keep the pool at full strength while work remains,
    // honoring each slot's respawn backoff (a flapping slot waits it out).
    bool any_alive = false;
    bool any_backing_off = false;
    const auto respawn_now = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < workers.size() && result.error.empty(); ++s) {
      if (workers[s].alive) {
        any_alive = true;
        continue;
      }
      if (ready.empty() && inflight == 0) continue;
      if (respawn_now < workers[s].respawn_after) {
        any_backing_off = true;
        continue;
      }
      if (spawn_worker(s)) {
        ++result.stats.workers_respawned;
        any_alive = true;
      } else if (!any_alive && !any_backing_off && s + 1 == workers.size()) {
        result.error = "cannot respawn any shard worker";
      }
    }
    if (!result.error.empty()) break;

    std::vector<pollfd> pfds;
    std::vector<std::size_t> slot_of;
    for (std::size_t s = 0; s < workers.size(); ++s) {
      if (!workers[s].alive) continue;
      pfds.push_back({workers[s].fd, POLLIN, 0});
      slot_of.push_back(s);
    }
    // Poll in slices no coarser than the heartbeat cadence so supervision
    // reacts within about one interval (and an all-dead pool in backoff
    // still sleeps instead of spinning).
    int poll_ms = 200;
    if (opts.heartbeat_interval_ms > 0) {
      poll_ms = std::clamp(opts.heartbeat_interval_ms, 10, 200);
    }
    const int n = poll(pfds.empty() ? nullptr : pfds.data(),
                       static_cast<nfds_t>(pfds.size()), poll_ms);
    if (n < 0 && errno != EINTR) {
      result.error = "poll failed";
      break;
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        (void)drain_worker(slot_of[i]);
      }
    }
  }

  // Shutdown: orderly for live workers, forceful on the error path (they may
  // be mid-task and deaf to the socket).
  std::string bye;
  encode_frame(bye, MsgType::kShutdown, "");
  for (WorkerSlot& w : workers) {
    if (!w.alive) continue;
    if (!result.error.empty()) {
      kill(w.pid, SIGKILL);
    } else {
      (void)write_all(w.fd, bye);
      ++result.stats.frames_sent;
      result.stats.bytes_sent += bye.size();
    }
    close(w.fd);
    w.fd = -1;
    int status = 0;
    (void)waitpid(w.pid, &status, 0);
    w.alive = false;
  }

  result.stopped_early = stopping && result.error.empty();
  result.ok = result.error.empty();
  return result;
}

}  // namespace plankton::sched
