// Little-endian wire codec primitives shared by the OutcomeStore outcome
// format (sched/outcome_store.cpp) and the shard coordinator framing
// (sched/shard.cpp) — one definition, so the nested format and its carrier
// can never drift apart.
//
// Decode contract: get_* return false on truncated input and consume
// nothing on failure beyond what was validated; fits() must guard every
// element count before it sizes an allocation (hostile counts cannot OOM).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace plankton::wire {

template <typename T>
inline void put_int(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
inline bool get_int(std::string_view& in, T& v) {
  if (in.size() < sizeof(T)) return false;
  std::memcpy(&v, in.data(), sizeof(T));
  in.remove_prefix(sizeof(T));
  return true;
}

inline void put_string(std::string& out, std::string_view s) {
  put_int(out, static_cast<std::uint64_t>(s.size()));
  out.append(s);
}

inline bool get_string(std::string_view& in, std::string& s) {
  std::uint64_t len = 0;
  if (!get_int(in, len) || len > in.size()) return false;
  s.assign(in.data(), static_cast<std::size_t>(len));
  in.remove_prefix(static_cast<std::size_t>(len));
  return true;
}

/// `count` forthcoming elements of at least `elem_size` wire bytes each must
/// fit in what is actually left — the anti-OOM guard for hostile length
/// fields. `elem_size` must be the element's *minimum encoded size*, not a
/// smaller prefix, or a lying count can still amplify an allocation.
inline bool fits(std::string_view in, std::uint64_t count,
                 std::size_t elem_size) {
  return count <= in.size() / elem_size;
}

}  // namespace plankton::wire
