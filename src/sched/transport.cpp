#include "sched/transport.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>

namespace plankton::sched {
namespace {

/// Blocking full-buffer send with MSG_NOSIGNAL: a worker that dies between
/// connect and bootstrap must surface as EPIPE, never SIGPIPE.
bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = send(fd, data, n, MSG_NOSIGNAL);
    if (w > 0) {
      data += w;
      n -= static_cast<std::size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      (void)poll(&pfd, 1, 100);
      continue;
    }
    return false;
  }
  return true;
}

/// Non-blocking connect bounded by `timeout_ms`, returned as a blocking fd
/// (the bootstrap handshake is sequential anyway; the coordinator flips it
/// to O_NONBLOCK once the worker is accepted).
int connect_with_timeout(const std::string& host, const std::string& port,
                         int timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0) return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int flags = fcntl(fd, F_GETFL, 0);
    (void)fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      rc = poll(&pfd, 1, timeout_ms) == 1 ? 0 : -1;
      if (rc == 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
          rc = -1;
        }
      }
    }
    if (rc == 0) {
      (void)fcntl(fd, F_SETFL, flags);
      break;
    }
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  return fd;
}

}  // namespace

TcpWorkerTransport::TcpWorkerTransport(std::vector<std::string> addresses,
                                       std::string bootstrap_payload,
                                       std::uint64_t expected_plan_hash,
                                       int connect_timeout_ms)
    : TcpWorkerTransport(
          std::move(addresses),
          PayloadFactory([payload = std::move(bootstrap_payload)](
                             std::size_t, int) { return payload; }),
          expected_plan_hash, connect_timeout_ms) {}

TcpWorkerTransport::TcpWorkerTransport(std::vector<std::string> addresses,
                                       PayloadFactory payload_factory,
                                       std::uint64_t expected_plan_hash,
                                       int connect_timeout_ms)
    : addrs_(std::move(addresses)),
      payload_factory_(std::move(payload_factory)),
      expected_plan_hash_(expected_plan_hash),
      connect_timeout_ms_(std::max(connect_timeout_ms, 1)) {}

int TcpWorkerTransport::start(std::size_t slot, int generation, pid_t& pid) {
  pid = -1;
  if (addrs_.empty()) return -1;
  const std::string& addr = addrs_[slot % addrs_.size()];
  const std::size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    std::fprintf(stderr, "plankton tcp transport: bad worker address '%s'\n",
                 addr.c_str());
    return -1;
  }
  const int fd = connect_with_timeout(addr.substr(0, colon),
                                      addr.substr(colon + 1),
                                      connect_timeout_ms_);
  if (fd < 0) return -1;
  // Keepalive with LAN-aggressive probing: a half-open worker connection
  // (host gone without a FIN) must die in seconds so the supervision ladder
  // reassigns the task, instead of the kernel's two-hour default.
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
#if defined(TCP_KEEPIDLE)
  const int idle = 5, intvl = 2, cnt = 5;
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &intvl, sizeof(intvl));
  setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &cnt, sizeof(cnt));
#endif
  std::string out;
  encode_frame(out, MsgType::kBootstrap, payload_factory_(slot, generation));
  if (!send_all(fd, out.data(), out.size())) {
    close(fd);
    return -1;
  }
  // Block for the ack under a budget generous enough for the worker to
  // parse the config and rebuild the plan before answering.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(connect_timeout_ms_) * 4;
  FrameDecoder decoder;
  Frame frame;
  char buf[4096];
  for (;;) {
    const FrameDecoder::Status st = decoder.next(frame);
    if (st == FrameDecoder::Status::kFrame) break;
    if (st == FrameDecoder::Status::kError ||
        std::chrono::steady_clock::now() >= deadline) {
      close(fd);
      return -1;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int pr = poll(&pfd, 1, 100);
    if (pr < 0 && errno != EINTR) {
      close(fd);
      return -1;
    }
    if (pr <= 0) continue;
    const ssize_t r = recv(fd, buf, sizeof(buf), 0);
    if (r > 0) {
      decoder.feed(buf, static_cast<std::size_t>(r));
    } else if (r == 0 || errno != EINTR) {
      close(fd);
      return -1;
    }
  }
  BootstrapAckMsg ack;
  if (frame.type != MsgType::kBootstrapAck ||
      !decode_bootstrap_ack(frame.payload, ack) || decoder.buffered() != 0) {
    std::fprintf(stderr,
                 "plankton tcp transport: worker %s spoke a bad handshake\n",
                 addr.c_str());
    close(fd);
    return -1;
  }
  if (ack.ok == 0 || ack.plan_hash != expected_plan_hash_) {
    std::fprintf(
        stderr, "plankton tcp transport: worker %s refused bootstrap (%s)\n",
        addr.c_str(), ack.ok == 0 ? ack.error.c_str() : "plan hash mismatch");
    close(fd);
    return -1;
  }
  return fd;
}

}  // namespace plankton::sched
