// Worker transports for the shard coordinator (ROADMAP "cluster-scale
// sharding"): how run_sharded_task_graph obtains, stops, and reaps worker
// connections. The protocol on the wire is identical for every transport —
// the same PKS1 frames, the same supervision ladder, the same crash
// recovery — so the coordinator is transport-agnostic past start().
//
//   fork (default, internal to shard.cpp)   children inherit the plan by
//                                           copy-on-write; only results
//                                           cross the socketpair
//   tcp (TcpWorkerTransport)                workers are pre-started
//                                           plankton_worker processes, on
//                                           this or other hosts, that
//                                           reconstruct the plan from a
//                                           kBootstrap blob (serve/serve.hpp
//                                           codec) and prove it with a plan
//                                           hash in kBootstrapAck
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/shard.hpp"

namespace plankton::sched {

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Establishes the worker for `slot` (its generation-th incarnation,
  /// counting respawns) and returns a connected stream fd, or -1 on failure
  /// — the coordinator's respawn backoff paces the retries. `pid` reports
  /// the local process id when the transport spawned one, -1 otherwise.
  virtual int start(std::size_t slot, int generation, pid_t& pid) = 0;

  /// Forcefully stops a worker the coordinator gave up on (hang kill,
  /// poisoned stream), before its fd is closed. Local transports SIGKILL;
  /// remote workers notice the close instead and recycle the session.
  virtual void terminate(std::size_t slot, pid_t pid) = 0;

  /// Disposes of the stopped worker after its fd was closed (waitpid for
  /// local processes; nothing to do remotely).
  virtual void reap(std::size_t slot, pid_t pid) = 0;
};

/// Remote workers over TCP. Slot s connects to addresses[s % n] (each
/// "host:port", typically one per plankton_worker process), ships the
/// kBootstrap blob, and blocks for a kBootstrapAck whose plan hash matches
/// `expected_plan_hash` — a worker that reconstructed a diverging plan would
/// silently verify the wrong PECs, so it is refused like a connect failure.
/// A respawn is simply a reconnect: while the remote process is down start()
/// fails fast and surviving workers absorb the reassigned tasks; once it is
/// back (plankton_worker serves sessions in an accept loop) the slot refills.
class TcpWorkerTransport final : public WorkerTransport {
 public:
  /// Builds the kBootstrap payload for one (slot, generation) incarnation —
  /// the coordinator resolves per-incarnation state (e.g. which FaultPlan
  /// faults this incarnation must act out) into the blob it ships.
  using PayloadFactory =
      std::function<std::string(std::size_t slot, int generation)>;

  TcpWorkerTransport(std::vector<std::string> addresses,
                     std::string bootstrap_payload,
                     std::uint64_t expected_plan_hash,
                     int connect_timeout_ms = 5000);

  TcpWorkerTransport(std::vector<std::string> addresses,
                     PayloadFactory payload_factory,
                     std::uint64_t expected_plan_hash,
                     int connect_timeout_ms = 5000);

  [[nodiscard]] const char* name() const override { return "tcp"; }
  int start(std::size_t slot, int generation, pid_t& pid) override;
  void terminate(std::size_t, pid_t) override {}
  void reap(std::size_t, pid_t) override {}

 private:
  std::vector<std::string> addrs_;
  PayloadFactory payload_factory_;
  std::uint64_t expected_plan_hash_ = 0;
  int connect_timeout_ms_ = 5000;
};

}  // namespace plankton::sched
