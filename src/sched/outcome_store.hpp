// In-memory store of converged PEC outcomes (paper §3.2).
//
// "For an SCC S, if there is another SCC S′ that depends on it, Plankton
// forces all possible outcomes of S to be written to an in-memory
// filesystem... When the verification of S′ gets scheduled, it reads these
// converged states, and uses them when necessary." This is that store:
// outcomes are kept as PecOutcome objects and served to downstream runs as
// UpstreamResolvers, matched by failure set so topology changes stay
// coordinated across PECs. serialize()/deserialize() turn an outcome batch
// into bytes and back — the wire format a future multi-process shard
// coordinator exchanges — and evict() releases a PEC's outcomes once every
// dependent has consumed them, bounding the store on long runs.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"

namespace plankton {

class OutcomeStore {
 public:
  OutcomeStore(const Network& net, const PecSet& pecs);
  ~OutcomeStore();  // out of line: Composite is incomplete here

  void put(PecId pec, std::vector<PecOutcome> outcomes);
  [[nodiscard]] bool has(PecId pec) const;
  [[nodiscard]] std::span<const PecOutcome> get(PecId pec) const;

  /// Releases the outcomes stored for `pec`. Only legal once every combos()
  /// resolver built from them is out of use — i.e. once all of `pec`'s
  /// dependents have finished their runs (Verifier tracks that count).
  void evict(PecId pec);

  /// Heap footprint of the stored outcomes (not the handed-out resolvers).
  [[nodiscard]] std::size_t bytes() const;

  /// Serializes an outcome batch to a self-contained byte string — the wire
  /// format of the multi-process sharding roadmap item. deserialize() is the
  /// exact inverse for the same network (link count validated); it returns
  /// false on truncated or corrupt input and leaves `out` empty.
  [[nodiscard]] std::string serialize(std::span<const PecOutcome> outcomes) const;
  [[nodiscard]] bool deserialize(std::string_view data,
                                 std::vector<PecOutcome>& out) const;

  /// All combinations of one outcome per dependency, restricted to outcomes
  /// recorded under exactly `failures`. Returned resolvers are owned by the
  /// store and stay valid for its lifetime. Empty when some dependency has
  /// no outcome under the failure set.
  [[nodiscard]] std::vector<const UpstreamResolver*> combos(
      std::span<const PecId> deps, const FailureSet& failures) const;

 private:
  class Composite;

  const Network& net_;
  const PecSet& pecs_;
  mutable std::mutex mu_;
  std::map<PecId, std::vector<PecOutcome>> outcomes_;
  mutable std::vector<std::unique_ptr<Composite>> resolvers_;
};

/// UpstreamProvider adapter over the store for one downstream PEC.
class StoreProvider final : public UpstreamProvider {
 public:
  StoreProvider(const OutcomeStore& store, std::vector<PecId> deps,
                bool has_dependents)
      : store_(store), deps_(std::move(deps)), has_dependents_(has_dependents) {}

  [[nodiscard]] std::vector<const UpstreamResolver*> outcomes(
      const FailureSet& failures) const override {
    if (deps_.empty()) {
      return {nullptr};  // no upstream information needed
    }
    return store_.combos(deps_, failures);
  }
  [[nodiscard]] bool has_dependents() const override { return has_dependents_; }

 private:
  const OutcomeStore& store_;
  std::vector<PecId> deps_;
  bool has_dependents_;
};

}  // namespace plankton
