// In-memory store of converged PEC outcomes (paper §3.2).
//
// "For an SCC S, if there is another SCC S′ that depends on it, Plankton
// forces all possible outcomes of S to be written to an in-memory
// filesystem... When the verification of S′ gets scheduled, it reads these
// converged states, and uses them when necessary." This is that store, minus
// the serialization: outcomes are kept as PecOutcome objects and served to
// downstream runs as UpstreamResolvers, matched by failure set so topology
// changes stay coordinated across PECs.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"

namespace plankton {

class OutcomeStore {
 public:
  OutcomeStore(const Network& net, const PecSet& pecs);
  ~OutcomeStore();  // out of line: Composite is incomplete here

  void put(PecId pec, std::vector<PecOutcome> outcomes);
  [[nodiscard]] bool has(PecId pec) const;
  [[nodiscard]] std::span<const PecOutcome> get(PecId pec) const;

  /// All combinations of one outcome per dependency, restricted to outcomes
  /// recorded under exactly `failures`. Returned resolvers are owned by the
  /// store and stay valid for its lifetime. Empty when some dependency has
  /// no outcome under the failure set.
  [[nodiscard]] std::vector<const UpstreamResolver*> combos(
      std::span<const PecId> deps, const FailureSet& failures) const;

 private:
  class Composite;

  const Network& net_;
  const PecSet& pecs_;
  mutable std::mutex mu_;
  std::map<PecId, std::vector<PecOutcome>> outcomes_;
  mutable std::vector<std::unique_ptr<Composite>> resolvers_;
};

/// UpstreamProvider adapter over the store for one downstream PEC.
class StoreProvider final : public UpstreamProvider {
 public:
  StoreProvider(const OutcomeStore& store, std::vector<PecId> deps,
                bool has_dependents)
      : store_(store), deps_(std::move(deps)), has_dependents_(has_dependents) {}

  [[nodiscard]] std::vector<const UpstreamResolver*> outcomes(
      const FailureSet& failures) const override {
    if (deps_.empty()) {
      return {nullptr};  // no upstream information needed
    }
    return store_.combos(deps_, failures);
  }
  [[nodiscard]] bool has_dependents() const override { return has_dependents_; }

 private:
  const OutcomeStore& store_;
  std::vector<PecId> deps_;
  bool has_dependents_;
};

}  // namespace plankton
