// Multi-process shard coordinator for the PEC task graph (paper §6, Fig. 7b
// — the scalability claim past one address space; ROADMAP "multi-process
// sharding").
//
// The coordinator partitions the SCC-ordered task graph across N worker
// processes (fork + socketpair on POSIX). Workers are forked from the
// calling process, so each inherits the network/PEC/task state by copy and
// only *results* cross the process boundary:
//
//   coordinator ──kOutcomeDelivery*──▶ worker   upstream PEC outcomes the
//                                               assigned task depends on
//                                               (OutcomeStore wire format)
//   coordinator ──kTaskAssign────────▶ worker   task index + evictable PECs
//   worker ──kViolationReport*───────▶ coordinator   one per counterexample
//   worker ──kOutcomeDelivery*───────▶ coordinator   recorded outcomes
//   worker ──kTaskDone───────────────▶ coordinator   per-PEC verdict + stats
//   worker ──kHeartbeat*─────────────▶ coordinator   liveness + progress
//   coordinator ──kShutdown──────────▶ worker   clean exit
//
// Every message is framed (magic, version, type, 64-bit payload length) and
// decoded with bounds checks: a truncated, corrupt, or absurdly-sized frame
// poisons the decoder instead of the process (tests fuzz this surface).
//
// Fault tolerance: the coordinator is the first failure boundary in the
// codebase. A worker that dies mid-task (crash, SIGKILL, poisoned stream) is
// detected via socket EOF, reaped, and replaced; its in-flight task is
// reassigned. A worker that is alive but *stuck* — the failure EOF can never
// see — is caught by the supervision ladder: heartbeats carry the
// exploration progress counter, a soft per-task deadline triggers a progress
// probe, and the hard deadline SIGKILLs the worker into the same
// reap/reassign path (with exponential backoff on respawning a flapping
// slot). Exploration is deterministic per task, so the merged verdict,
// violation multiset, and state counts stay bit-identical to a
// single-process run regardless of shard count, assignment, or crashes. A
// per-task reassignment cap turns a deterministically-crashing task into a
// coordinator-level error rather than a fork loop.
//
// Assignment is dependency-aware: tasks become eligible in SCC condensation
// order (sched/deps numbering) and an eligible task prefers the idle worker
// that already holds the most of its upstream outcomes, minimizing
// bytes-on-the-wire (ShardStats records what actually moved).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <sys/types.h>
#include <vector>

#include "checker/stats.hpp"
#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"
#include "sched/fault.hpp"
#include "sched/outcome_store.hpp"
#include "sched/work_stealing.hpp"

namespace plankton::sched {

// ---------------------------------------------------------------------------
// Wire framing
// ---------------------------------------------------------------------------

enum class MsgType : std::uint16_t {
  kTaskAssign = 1,       ///< coordinator → worker: task index + evict list
  kOutcomeDelivery = 2,  ///< either direction: one PEC's outcome batch
  kViolationReport = 3,  ///< worker → coordinator: one counterexample
  kTaskDone = 4,         ///< worker → coordinator: per-PEC verdicts + stats
  kShutdown = 5,         ///< coordinator → worker: exit cleanly; also the
                         ///< serve client's clean-disconnect request
  kHeartbeat = 6,        ///< worker → coordinator: liveness + progress counter

  // Verification-as-a-service frames (src/serve/): the daemon speaks the
  // same PKS1 framing over its Unix/TCP socket, so one decoder — and one
  // fuzz surface — covers both transports. Payload codecs live in
  // serve/serve.hpp next to the daemon that owns them.
  kLoadNet = 7,          ///< client → daemon: config text to make resident
  kApplyDelta = 8,       ///< client → daemon: add/del config-line delta ops
  kQuery = 9,            ///< client → daemon: policy spec to verify
  kVerdictReply = 10,    ///< daemon → client: verdict + counters + violations
  kCacheStats = 11,      ///< empty payload: probe; non-empty: counter reply

  // Cluster-scale sharding frames: TCP workers (examples/plankton_worker)
  // bootstrap from a serialized plan instead of fork-inherited memory, and
  // any worker can export half of a monster PEC's pending frontier back to
  // the coordinator for re-dispatch as dynamic subtasks.
  kBootstrap = 12,       ///< coordinator → worker: serialized net/policy/plan
                         ///< blob (codec in serve/serve.hpp — render_config +
                         ///< options flattening live with the daemon)
  kBootstrapAck = 13,    ///< worker → coordinator: plan hash or refusal
  kSplitExport = 14,     ///< worker → coordinator: Frontier::split snapshots
  kSubtaskAssign = 15,   ///< coordinator → worker: re-dispatched snapshots
  kSubtaskDone = 16,     ///< worker → coordinator: subtask verdict + stats
};

inline constexpr std::uint32_t kFrameMagic = 0x504b5331;  // "PKS1"
inline constexpr std::uint16_t kFrameVersion = 1;
/// magic + version + type + payload length.
inline constexpr std::size_t kFrameHeaderBytes = 4 + 2 + 2 + 8;
/// Default ceiling for one frame's payload. Anything larger is treated as a
/// corrupt length field (a single PEC's outcome batch is orders of magnitude
/// smaller on every workload we run).
inline constexpr std::uint64_t kDefaultMaxFramePayload = std::uint64_t{1} << 30;

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::string payload;
};

/// Appends one framed message to `out`.
void encode_frame(std::string& out, MsgType type, std::string_view payload);

/// Incremental, bounds-checked frame parser over a byte stream. feed() bytes
/// as they arrive; next() pops complete frames. A malformed header (bad
/// magic/version, unknown type, oversized length) moves the decoder into a
/// permanent error state — the stream cannot be trusted past the first lie.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint64_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  void feed(const char* data, std::size_t n);

  enum class Status : std::uint8_t {
    kNeedMore = 0,  ///< no complete frame buffered
    kFrame = 1,     ///< `out` holds the next frame
    kError = 2,     ///< stream poisoned; error() says why
  };
  Status next(Frame& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string buf_;
  std::size_t pos_ = 0;
  std::uint64_t max_payload_;
  bool failed_ = false;
  bool shutdown_seen_ = false;  ///< kShutdown is terminal; later frames poison
  std::string error_;
};

// ---------------------------------------------------------------------------
// Message payloads. decode_* are the exact inverses of encode_*; they return
// false on truncated/corrupt/hostile input and leave the output
// default-initialized, and every length field is validated against the bytes
// actually present before it sizes an allocation.
// ---------------------------------------------------------------------------

struct TaskAssignMsg {
  std::uint64_t task = 0;
  /// PECs whose outcomes the receiving worker may release: no incomplete
  /// task depends on them anymore (coordinator-side refcount hit zero).
  std::vector<PecId> evict;
  /// Intra-PEC work export armed for this task: the worker may ship
  /// kSplitExport frames while it runs (the coordinator accepts them
  /// unconditionally from an armed worker — the donor already removed the
  /// states from its frontier, so dropping one would lose coverage).
  std::uint8_t export_ok = 0;
};

struct OutcomeDeliveryMsg {
  PecId pec = 0;
  /// OutcomeStore::serialize() bytes — the nested PR-3 wire format.
  std::string outcomes_wire;
};

struct ViolationMsg {
  PecId pec = 0;
  std::vector<LinkId> failed_links;
  std::string message;
  std::string trail_text;
};

struct PecDoneMsg {
  PecId pec = 0;
  std::uint8_t holds = 1;
  std::uint8_t timed_out = 0;
  std::uint8_t state_limit_hit = 0;
  std::uint8_t memory_limit_hit = 0;
  /// BudgetKind of the budget that ended the search early (0 = none).
  std::uint8_t budget_tripped = 0;
  /// 0 when coverage was probabilistic (lossy/degraded visited backend).
  std::uint8_t exhaustive = 1;
  /// Verdict translated from the PEC's class representative (batch PEC
  /// verification) rather than explored natively; the stats are the
  /// representative's and must not be double-counted into run totals.
  std::uint8_t translated = 0;
  SearchStats stats;
};

struct TaskDoneMsg {
  std::uint64_t task = 0;
  std::vector<PecDoneMsg> pecs;
};

[[nodiscard]] std::string encode_task_assign(const TaskAssignMsg& m);
[[nodiscard]] bool decode_task_assign(std::string_view in, TaskAssignMsg& out);
[[nodiscard]] std::string encode_outcome_delivery(const OutcomeDeliveryMsg& m);
[[nodiscard]] bool decode_outcome_delivery(std::string_view in,
                                           OutcomeDeliveryMsg& out);
[[nodiscard]] std::string encode_violation(const ViolationMsg& m);
[[nodiscard]] bool decode_violation(std::string_view in, ViolationMsg& out);
[[nodiscard]] std::string encode_task_done(const TaskDoneMsg& m);
[[nodiscard]] bool decode_task_done(std::string_view in, TaskDoneMsg& out);

/// Worker liveness beacon, written by a dedicated worker thread on a fixed
/// cadence (ShardRunOptions::heartbeat_interval_ms) and piggybacked on the
/// PKS1 framing. `progress` samples the worker's exploration liveness
/// counter (checker/progress.hpp): the coordinator distinguishes
/// slow-but-advancing workers (counter moves) from alive-but-stuck ones
/// (beats arrive, counter flat) from wedged ones (beats stop — the beacon
/// thread shares the frame-write lock with data frames, so a worker stuck
/// holding it goes silent).
struct HeartbeatMsg {
  std::uint64_t progress = 0;
};

[[nodiscard]] std::string encode_heartbeat(const HeartbeatMsg& m);
[[nodiscard]] bool decode_heartbeat(std::string_view in, HeartbeatMsg& out);

/// Worker's answer to a kBootstrap blob (TCP transport only): either the
/// fingerprint of the plan it reconstructed — the coordinator refuses the
/// worker on a mismatch, since a diverging plan would silently verify the
/// wrong PECs — or a refusal with a human-readable reason.
struct BootstrapAckMsg {
  std::uint8_t ok = 0;
  std::string error;
  std::uint64_t plan_hash = 0;
};

[[nodiscard]] std::string encode_bootstrap_ack(const BootstrapAckMsg& m);
[[nodiscard]] bool decode_bootstrap_ack(std::string_view in, BootstrapAckMsg& out);

/// Half of a worker's pending frontier for `pec`, detached by
/// Frontier::split() and shipped for re-dispatch. The donor keeps exploring
/// the other half; ownership of these states transfers with the frame.
struct SplitExportMsg {
  PecId pec = 0;
  std::vector<StateSnapshot> snaps;
};

/// One re-dispatched slice of an exported PEC. `id` names the coordinator's
/// bookkeeping slot (echoed in kSubtaskDone); `export_ok` arms recursive
/// re-export from the subtask's own frontier.
struct SubtaskAssignMsg {
  std::uint64_t id = 0;
  PecId pec = 0;
  std::uint8_t export_ok = 0;
  std::vector<StateSnapshot> snaps;
};

/// Subtask completion: the per-PEC verdict/stats of exploring the donated
/// snapshots (violations ride ahead as ordinary kViolationReport frames).
struct SubtaskDoneMsg {
  std::uint64_t id = 0;
  PecDoneMsg pec;
};

[[nodiscard]] std::string encode_split_export(const SplitExportMsg& m);
[[nodiscard]] bool decode_split_export(std::string_view in, SplitExportMsg& out);
[[nodiscard]] std::string encode_subtask_assign(const SubtaskAssignMsg& m);
[[nodiscard]] bool decode_subtask_assign(std::string_view in,
                                         SubtaskAssignMsg& out);
[[nodiscard]] std::string encode_subtask_done(const SubtaskDoneMsg& m);
[[nodiscard]] bool decode_subtask_done(std::string_view in, SubtaskDoneMsg& out);

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Coordinator-side counters, surfaced through VerifyResult::shard.
struct ShardStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;          ///< total wire bytes, coordinator → workers
  std::uint64_t bytes_received = 0;      ///< total wire bytes, workers → coordinator
  std::uint64_t outcome_bytes_sent = 0;  ///< upstream outcome deliveries only
  std::uint64_t outcome_bytes_received = 0;
  std::uint64_t deliveries_skipped = 0;  ///< dep outcomes already on the worker
  std::uint64_t tasks_reassigned = 0;    ///< in-flight tasks rescued from dead workers
  std::uint64_t workers_respawned = 0;
  std::uint64_t decode_errors = 0;       ///< poisoned worker streams
  std::uint64_t heartbeats = 0;          ///< kHeartbeat frames received
  std::uint64_t progress_probes = 0;     ///< soft-deadline probes of slow tasks
  std::uint64_t hang_kills = 0;          ///< hard-deadline SIGKILLs of stuck workers
  std::uint64_t write_timeouts = 0;      ///< bounded write_all gave up on a peer
  // -- intra-PEC work export ------------------------------------------------
  std::uint64_t splits_exported = 0;     ///< kSplitExport frames accepted
  std::uint64_t subtasks_dispatched = 0; ///< kSubtaskAssign frames sent
  std::uint64_t subtasks_completed = 0;  ///< kSubtaskDone results merged
  std::uint64_t subtasks_stale = 0;      ///< discarded: donor died, base re-ran
  /// tasks_per_shard[w] = tasks completed by worker slot w.
  std::vector<std::uint64_t> tasks_per_shard;
};

/// What the coordinator must know about one schedulable task. The graph
/// (TaskGraph) carries the dependency edges; the spec carries the PEC-level
/// payload bookkeeping.
struct ShardTaskSpec {
  std::vector<PecId> pecs;  ///< run in order inside the worker
  /// Upstream PECs whose recorded outcomes must be on the worker before the
  /// task runs (deduplicated, excludes PECs of the task itself).
  std::vector<PecId> deps;
  /// Batch PEC verification: class_members[i] lists the PECs whose verdicts
  /// ride on pecs[i] (the class representative). The worker emits one
  /// ShardPecResult per member — translated from the representative's clean
  /// hold or natively re-explored — so only results cross the wire. Empty
  /// when dedup is off or the class is a singleton. (Specs are inherited by
  /// fork, so this ships with the task at no wire cost.)
  std::vector<std::vector<PecId>> class_members;
  /// Intra-PEC work export may be armed for this task: single PEC, no
  /// upstream deps, no dependents, no class tail — the cases where a
  /// donated frontier snapshot is self-contained (the verifier decides
  /// this; the coordinator only arms eligible tasks).
  bool export_eligible = false;
};

/// Worker-side product of one PEC run. When `record` is set (some incomplete
/// task depends on this PEC), the body must have published the PEC's
/// outcomes into its worker-local store — the worker ships the store's
/// content for `pec` back to the coordinator (no second copy travels here).
struct ShardPecResult {
  PecId pec = 0;
  bool holds = true;
  bool timed_out = false;
  bool state_limit_hit = false;
  bool memory_limit_hit = false;
  BudgetKind budget_tripped = BudgetKind::kNone;
  bool exhaustive = true;
  SearchStats stats;
  std::vector<ViolationMsg> violations;
  bool record = false;
  /// See PecDoneMsg::translated.
  bool translated = false;
};

struct ShardRunOptions {
  int shards = 2;
  /// Stop dispatching new tasks once any report arrives !holds (the
  /// in-process early-stop behaviour); in-flight tasks still complete.
  bool stop_on_violation = false;
  std::uint64_t max_frame_payload = kDefaultMaxFramePayload;
  /// Give up on a task after this many worker deaths while it was in flight
  /// (a deterministically-crashing task must not fork forever).
  int max_reassignments_per_task = 3;

  // -- supervision (the hang-detection escalation ladder) -------------------
  /// Worker heartbeat cadence. Each worker runs a beacon thread that writes
  /// a kHeartbeat frame (carrying the exploration progress counter) every
  /// interval; 0 disables heartbeats and the deadlines below.
  int heartbeat_interval_ms = 100;
  /// Soft per-task deadline: a task in flight this long triggers one
  /// progress probe (stat + stderr note). A worker whose heartbeats arrive
  /// and whose progress counter advances is slow-but-alive and is left
  /// alone until the hard deadline.
  int soft_deadline_ms = 2000;
  /// Hard per-task deadline: a worker whose heartbeats have stopped for
  /// this long, or whose progress counter has been flat this long while a
  /// task is in flight, is presumed stuck — SIGKILL, reap, reassign under
  /// the reassignment cap (the same path socket EOF takes).
  int hard_deadline_ms = 30000;
  /// Base of the exponential respawn backoff for a flapping worker slot:
  /// the k-th respawn of a slot waits base << min(k, 6), capped at 2 s, so
  /// a crash-looping slot cannot monopolize the coordinator with forks
  /// (saturating — see compute_respawn_backoff_ms).
  int respawn_backoff_ms = 25;

  // -- intra-PEC work export ------------------------------------------------
  /// Arm export_eligible tasks: their workers may split half of a pending
  /// frontier back to the coordinator for re-dispatch as dynamic subtasks.
  bool split_export = false;
  /// Stop arming further (sub)tasks of a PEC once this many splits have been
  /// accepted for it — bounds the subtask fan-out of one pathological PEC
  /// (already-armed donors finish their current exploration; the worker-side
  /// per-run cap bounds those).
  int export_max_per_pec = 64;

  /// Deterministic fault injection (sched/fault.hpp) consulted by the
  /// worker loop and transport at instrumented points. Empty = no faults.
  FaultPlan fault_plan;

  // Test hooks (fault injection for the crash-recovery suite):
  /// Called right after a task assignment has been written to a worker.
  std::function<void(int shard, pid_t pid, std::size_t task)> test_on_assign;
  /// Workers sleep this long before running each assigned task, widening the
  /// window in which test_on_assign can kill them mid-task.
  int test_worker_task_delay_ms = 0;
};

struct ShardRunResult {
  bool ok = false;           ///< coordinator completed (or stopped early by design)
  bool stopped_early = false;
  std::string error;         ///< set when !ok (fork failure, poisoned task, ...)
  std::vector<ShardPecResult> reports;  ///< outcomes stripped; wire order
  ShardStats stats;
};

/// Saturating exponential backoff before the (deaths)-th respawn of a worker
/// slot: base << min(deaths-1, 6), clamped to [0, 2000] ms with int64
/// arithmetic so a caller-supplied large base cannot overflow into a
/// negative gate (which would turn the backoff into a busy fork loop).
[[nodiscard]] int compute_respawn_backoff_ms(int base_ms, int deaths);

/// Worker-side sink for Frontier::split snapshots, bound to the PEC being
/// explored. true = the coordinator now owns the states; false = export
/// declined (unarmed, cap hit, transport gone) and the vector is untouched —
/// the donor keeps them.
using SplitExporter =
    std::function<bool(PecId pec, std::vector<StateSnapshot>&& snaps)>;

/// Worker-side execution hooks for intra-PEC work export. When provided,
/// run_task replaces the plain `body` (same contract, plus the exporter to
/// bind into the exploration), and run_subtask explores a donated snapshot
/// slice of `pec` to a single ShardPecResult (record/translated unused).
struct ShardExportHooks {
  std::function<std::vector<ShardPecResult>(
      std::size_t task, OutcomeStore& upstream, const SplitExporter& sink)>
      run_task;
  std::function<ShardPecResult(PecId pec, std::vector<StateSnapshot>&& snaps,
                               const SplitExporter& sink)>
      run_subtask;
};

/// One worker's whole session over an established coordinator socket: the
/// kTaskAssign/kSubtaskAssign/kOutcomeDelivery/kShutdown loop, with a
/// heartbeat beacon thread that is stopped and joined before returning (so
/// nothing can write to `fd` after the session ends). Returns the worker
/// exit code: 0 orderly (kShutdown or coordinator EOF), 2 transport error,
/// 3 protocol error, 4 body exception. Fork workers _exit() with it; TCP
/// workers (examples/plankton_worker) return to their accept loop.
int run_worker_session(
    int fd, int slot, int generation, const Network& net, const PecSet& pecs,
    std::size_t task_count, const ShardRunOptions& opts,
    const std::function<std::vector<ShardPecResult>(
        std::size_t task, OutcomeStore& upstream)>& body,
    const ShardExportHooks* hooks = nullptr);

class WorkerTransport;  // sched/transport.hpp

/// Runs `graph` across `opts.shards` workers. With the default (null)
/// transport, workers are forked children: `body` executes in the *worker*
/// process with the task's upstream outcomes available in `upstream` (a
/// worker-local OutcomeStore fed from kOutcomeDelivery frames) and returns
/// the per-PEC results to ship back. The store is mutable so a multi-PEC
/// (cyclic SCC) task body can publish one mate's outcomes for the next mate
/// mid-task, matching the in-process scheduler's behaviour. The calling
/// process must be effectively single-threaded at the first fork (workers
/// are spawned lazily, including respawns after crashes). A non-null
/// `transport` replaces fork entirely (e.g. TcpWorkerTransport: remote
/// plankton_worker processes that bootstrapped their own plan — `body` and
/// `hooks` then never run in this process). `hooks`, when given, replace
/// `body` in fork workers and additionally enable intra-PEC work export
/// (opts.split_export) on export_eligible tasks.
ShardRunResult run_sharded_task_graph(
    const Network& net, const PecSet& pecs, const ShardRunOptions& opts,
    const TaskGraph& graph, const std::vector<ShardTaskSpec>& tasks,
    const std::function<std::vector<ShardPecResult>(
        std::size_t task, OutcomeStore& upstream)>& body,
    WorkerTransport* transport = nullptr,
    const ShardExportHooks* hooks = nullptr);

}  // namespace plankton::sched
