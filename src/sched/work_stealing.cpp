#include "sched/work_stealing.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace plankton::sched {
namespace {

/// Runs the whole graph on the calling thread, dependencies first. Used for
/// workers == 1: no thread, no synchronization, deterministic LIFO order
/// matching the work-stealing owner-pop order.
void run_inline(const TaskGraph& graph,
                const std::function<void(std::size_t, int)>& body) {
  std::vector<std::size_t> waiting = graph.waiting_on;
  std::vector<std::size_t> stack;
  for (std::size_t i = graph.size(); i > 0; --i) {
    if (waiting[i - 1] == 0) stack.push_back(i - 1);
  }
  while (!stack.empty()) {
    const std::size_t t = stack.back();
    stack.pop_back();
    body(t, 0);
    for (const std::size_t d : graph.dependents[t]) {
      if (--waiting[d] == 0) stack.push_back(d);
    }
  }
}

// ---------------------------------------------------------------------------
// Work stealing
// ---------------------------------------------------------------------------

/// One worker's job deque. The owner pushes/pops at the back (LIFO — depth
/// first through the dependency DAG, hot outcome data); thieves take from
/// the front (FIFO — the oldest, most likely largest subtree). A plain
/// mutex per deque suffices: it is only contended during steals, which are
/// rare when the graph has enough width.
struct alignas(64) WorkerDeque {
  std::mutex mu;
  std::deque<std::size_t> jobs;
};

class WorkStealingRun {
 public:
  WorkStealingRun(int workers, const TaskGraph& graph,
                  const std::function<void(std::size_t, int)>& body)
      : graph_(graph),
        body_(body),
        deques_(static_cast<std::size_t>(workers)),
        waiting_(std::make_unique<std::atomic<std::size_t>[]>(graph.size())),
        remaining_(graph.size()) {
    for (std::size_t i = 0; i < graph.size(); ++i) {
      waiting_[i].store(graph.waiting_on[i], std::memory_order_relaxed);
    }
    // Seed ready tasks round-robin so all workers start with work.
    std::size_t w = 0;
    for (std::size_t i = 0; i < graph.size(); ++i) {
      if (graph.waiting_on[i] != 0) continue;
      deques_[w % deques_.size()].jobs.push_back(i);
      queued_.fetch_add(1, std::memory_order_relaxed);
      w++;
    }
  }

  void run() {
    if (remaining_.load(std::memory_order_relaxed) == 0) return;
    std::vector<std::thread> threads;
    threads.reserve(deques_.size());
    for (std::size_t w = 0; w < deques_.size(); ++w) {
      threads.emplace_back([this, w] { worker_loop(static_cast<int>(w)); });
    }
    for (auto& t : threads) t.join();
  }

 private:
  bool try_pop_own(int w, std::size_t& task) {
    WorkerDeque& d = deques_[static_cast<std::size_t>(w)];
    std::scoped_lock lock(d.mu);
    if (d.jobs.empty()) return false;
    task = d.jobs.back();
    d.jobs.pop_back();
    return true;
  }

  bool try_steal(int w, std::size_t& task) {
    const std::size_t n = deques_.size();
    for (std::size_t k = 1; k < n; ++k) {
      WorkerDeque& d = deques_[(static_cast<std::size_t>(w) + k) % n];
      std::scoped_lock lock(d.mu);
      if (d.jobs.empty()) continue;
      task = d.jobs.front();
      d.jobs.pop_front();
      return true;
    }
    return false;
  }

  void push_own(int w, std::size_t task) {
    // Increment before the push: a thief can steal (and decrement) the
    // instant the deque lock drops, and a decrement-first interleaving
    // would wrap `queued_` past zero, leaving idle workers busy-spinning
    // on a phantom count.
    queued_.fetch_add(1, std::memory_order_release);
    {
      WorkerDeque& d = deques_[static_cast<std::size_t>(w)];
      std::scoped_lock lock(d.mu);
      d.jobs.push_back(task);
    }
    // Lock prevents a lost wakeup: an idle worker re-checks `queued_` under
    // this mutex before sleeping.
    { std::scoped_lock lock(sleep_mu_); }
    sleep_cv_.notify_one();
  }

  void complete(int w, std::size_t task) {
    for (const std::size_t d : graph_.dependents[task]) {
      if (waiting_[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        push_own(w, d);
      }
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::scoped_lock lock(sleep_mu_); }
      sleep_cv_.notify_all();
    }
  }

  void worker_loop(int w) {
    while (true) {
      std::size_t task = 0;
      if (try_pop_own(w, task) || try_steal(w, task)) {
        queued_.fetch_sub(1, std::memory_order_acquire);
        body_(task, w);
        complete(w, task);
        continue;
      }
      std::unique_lock lock(sleep_mu_);
      if (remaining_.load(std::memory_order_acquire) == 0) return;
      if (queued_.load(std::memory_order_acquire) != 0) continue;  // retry
      sleep_cv_.wait(lock, [this] {
        return queued_.load(std::memory_order_acquire) != 0 ||
               remaining_.load(std::memory_order_acquire) == 0;
      });
    }
  }

  const TaskGraph& graph_;
  const std::function<void(std::size_t, int)>& body_;
  std::vector<WorkerDeque> deques_;
  std::unique_ptr<std::atomic<std::size_t>[]> waiting_;
  std::atomic<std::size_t> remaining_;
  std::atomic<std::size_t> queued_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

// ---------------------------------------------------------------------------
// Fixed pool (baseline): one ready list behind one mutex + cv.
// ---------------------------------------------------------------------------

void run_fixed_pool(int workers, const TaskGraph& graph,
                    const std::function<void(std::size_t, int)>& body) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::size_t> ready;
  std::vector<std::size_t> waiting = graph.waiting_on;
  std::size_t unfinished = graph.size();
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (waiting[i] == 0) ready.push_back(i);
  }

  auto worker = [&](int w) {
    while (true) {
      std::size_t task;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !ready.empty() || unfinished == 0; });
        if (ready.empty()) return;
        task = ready.back();
        ready.pop_back();
      }
      body(task, w);
      {
        std::scoped_lock lock(mu);
        for (const std::size_t d : graph.dependents[task]) {
          if (--waiting[d] == 0) ready.push_back(d);
        }
        --unfinished;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();
}

}  // namespace

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kWorkStealing: return "work-stealing";
    case SchedulerKind::kFixedPool: return "fixed-pool";
  }
  return "?";
}

void run_task_graph(SchedulerKind kind, int workers, const TaskGraph& graph,
                    const std::function<void(std::size_t, int)>& body) {
  if (workers < 1) workers = 1;
  if (workers == 1 || graph.size() <= 1) {
    run_inline(graph, body);
    return;
  }
  switch (kind) {
    case SchedulerKind::kWorkStealing: {
      WorkStealingRun run(workers, graph, body);
      run.run();
      break;
    }
    case SchedulerKind::kFixedPool:
      run_fixed_pool(workers, graph, body);
      break;
  }
}

}  // namespace plankton::sched
