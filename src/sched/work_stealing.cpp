#include "sched/work_stealing.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

namespace plankton::sched {
namespace {

using Body = std::function<void(TaskContext&)>;

// Jobs are encoded as signed ids: >= 0 is an index into the static graph,
// < 0 addresses slot -(job + 1) of the dynamic-task slab.
using Job = std::int64_t;

[[nodiscard]] constexpr Job encode_dynamic(std::size_t slot) {
  return -static_cast<Job>(slot) - 1;
}
[[nodiscard]] constexpr std::size_t decode_dynamic(Job job) {
  return static_cast<std::size_t>(-job - 1);
}

/// Spawned-subtask storage. Slots are only appended while the run is live;
/// they are addressed by stable index so deques can carry plain ints. Each
/// slot is executed exactly once: take() moves the closure out, so captured
/// state (e.g. a split-off snapshot batch) is freed when the subtask runs,
/// not when the whole graph finishes.
class DynSlab {
 public:
  std::size_t add(Body fn) {
    const std::scoped_lock lock(mu_);
    slots_.push_back(std::make_unique<Body>(std::move(fn)));
    return slots_.size() - 1;
  }

  Body take(std::size_t slot) {
    const std::scoped_lock lock(mu_);
    Body fn = std::move(*slots_[slot]);
    slots_[slot].reset();
    return fn;
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<Body>> slots_;
};

/// Runs the whole graph on the calling thread, dependencies first. Used for
/// workers == 1: no thread, no synchronization, deterministic LIFO order
/// matching the work-stealing owner-pop order.
void run_inline(const TaskGraph& graph, const Body& body) {
  std::vector<std::size_t> waiting = graph.waiting_on;
  std::vector<Job> stack;
  DynSlab dyn;
  for (std::size_t i = graph.size(); i > 0; --i) {
    if (waiting[i - 1] == 0) stack.push_back(static_cast<Job>(i - 1));
  }

  class Ctx final : public TaskContext {
   public:
    Ctx(std::size_t task, std::vector<Job>& stack, DynSlab& dyn)
        : task_(task), stack_(stack), dyn_(dyn) {}
    [[nodiscard]] std::size_t task() const override { return task_; }
    [[nodiscard]] int worker() const override { return 0; }
    void spawn(Body fn) override {
      stack_.push_back(encode_dynamic(dyn_.add(std::move(fn))));
    }

   private:
    std::size_t task_;
    std::vector<Job>& stack_;
    DynSlab& dyn_;
  };

  while (!stack.empty()) {
    const Job job = stack.back();
    stack.pop_back();
    if (job < 0) {
      Ctx ctx(kDynamicTask, stack, dyn);
      dyn.take(decode_dynamic(job))(ctx);
      continue;
    }
    const auto t = static_cast<std::size_t>(job);
    Ctx ctx(t, stack, dyn);
    body(ctx);
    for (const std::size_t d : graph.dependents[t]) {
      if (--waiting[d] == 0) stack.push_back(static_cast<Job>(d));
    }
  }
}

// ---------------------------------------------------------------------------
// Work stealing
// ---------------------------------------------------------------------------

/// One worker's job deque. The owner pushes/pops at the back (LIFO — depth
/// first through the dependency DAG, hot outcome data); thieves take from
/// the front (FIFO — the oldest, most likely largest subtree). A plain
/// mutex per deque suffices: it is only contended during steals, which are
/// rare when the graph has enough width.
struct alignas(64) WorkerDeque {
  std::mutex mu;
  std::deque<Job> jobs;
};

class WorkStealingRun {
 public:
  WorkStealingRun(int workers, const TaskGraph& graph, const Body& body)
      : graph_(graph),
        body_(body),
        deques_(static_cast<std::size_t>(workers)),
        waiting_(std::make_unique<std::atomic<std::size_t>[]>(graph.size())),
        remaining_(graph.size()) {
    for (std::size_t i = 0; i < graph.size(); ++i) {
      waiting_[i].store(graph.waiting_on[i], std::memory_order_relaxed);
    }
    // Seed ready tasks round-robin so all workers start with work.
    std::size_t w = 0;
    for (std::size_t i = 0; i < graph.size(); ++i) {
      if (graph.waiting_on[i] != 0) continue;
      deques_[w % deques_.size()].jobs.push_back(static_cast<Job>(i));
      queued_.fetch_add(1, std::memory_order_relaxed);
      w++;
    }
  }

  void run() {
    if (remaining_.load(std::memory_order_relaxed) == 0) return;
    std::vector<std::thread> threads;
    threads.reserve(deques_.size());
    for (std::size_t w = 0; w < deques_.size(); ++w) {
      threads.emplace_back([this, w] { worker_loop(static_cast<int>(w)); });
    }
    for (auto& t : threads) t.join();
  }

 private:
  class Ctx final : public TaskContext {
   public:
    Ctx(WorkStealingRun& run, std::size_t task, int worker)
        : run_(run), task_(task), worker_(worker) {}
    [[nodiscard]] std::size_t task() const override { return task_; }
    [[nodiscard]] int worker() const override { return worker_; }
    void spawn(Body fn) override { run_.spawn(worker_, std::move(fn)); }

   private:
    WorkStealingRun& run_;
    std::size_t task_;
    int worker_;
  };

  void spawn(int w, Body fn) {
    // Count the subtask as outstanding *before* it becomes stealable, so
    // remaining_ can never hit zero while a spawned job is in flight.
    remaining_.fetch_add(1, std::memory_order_acq_rel);
    push_own(w, encode_dynamic(dyn_.add(std::move(fn))));
  }

  bool try_pop_own(int w, Job& job) {
    WorkerDeque& d = deques_[static_cast<std::size_t>(w)];
    std::scoped_lock lock(d.mu);
    if (d.jobs.empty()) return false;
    job = d.jobs.back();
    d.jobs.pop_back();
    return true;
  }

  bool try_steal(int w, Job& job) {
    const std::size_t n = deques_.size();
    for (std::size_t k = 1; k < n; ++k) {
      WorkerDeque& d = deques_[(static_cast<std::size_t>(w) + k) % n];
      std::scoped_lock lock(d.mu);
      if (d.jobs.empty()) continue;
      job = d.jobs.front();
      d.jobs.pop_front();
      return true;
    }
    return false;
  }

  void push_own(int w, Job job) {
    // Increment before the push: a thief can steal (and decrement) the
    // instant the deque lock drops, and a decrement-first interleaving
    // would wrap `queued_` past zero, leaving idle workers busy-spinning
    // on a phantom count.
    queued_.fetch_add(1, std::memory_order_release);
    {
      WorkerDeque& d = deques_[static_cast<std::size_t>(w)];
      std::scoped_lock lock(d.mu);
      d.jobs.push_back(job);
    }
    // Lock prevents a lost wakeup: an idle worker re-checks `queued_` under
    // this mutex before sleeping.
    { std::scoped_lock lock(sleep_mu_); }
    sleep_cv_.notify_one();
  }

  void complete(int w, Job job) {
    if (job >= 0) {
      for (const std::size_t d : graph_.dependents[static_cast<std::size_t>(job)]) {
        if (waiting_[d].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          push_own(w, static_cast<Job>(d));
        }
      }
    }
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      { std::scoped_lock lock(sleep_mu_); }
      sleep_cv_.notify_all();
    }
  }

  void worker_loop(int w) {
    while (true) {
      Job job = 0;
      if (try_pop_own(w, job) || try_steal(w, job)) {
        queued_.fetch_sub(1, std::memory_order_acquire);
        if (job >= 0) {
          Ctx ctx(*this, static_cast<std::size_t>(job), w);
          body_(ctx);
        } else {
          Ctx ctx(*this, kDynamicTask, w);
          dyn_.take(decode_dynamic(job))(ctx);
        }
        complete(w, job);
        continue;
      }
      std::unique_lock lock(sleep_mu_);
      if (remaining_.load(std::memory_order_acquire) == 0) return;
      if (queued_.load(std::memory_order_acquire) != 0) continue;  // retry
      sleep_cv_.wait(lock, [this] {
        return queued_.load(std::memory_order_acquire) != 0 ||
               remaining_.load(std::memory_order_acquire) == 0;
      });
    }
  }

  const TaskGraph& graph_;
  const Body& body_;
  std::vector<WorkerDeque> deques_;
  std::unique_ptr<std::atomic<std::size_t>[]> waiting_;
  std::atomic<std::size_t> remaining_;
  std::atomic<std::size_t> queued_{0};
  DynSlab dyn_;
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
};

// ---------------------------------------------------------------------------
// Fixed pool (baseline): one ready list behind one mutex + cv.
// ---------------------------------------------------------------------------

void run_fixed_pool(int workers, const TaskGraph& graph, const Body& body) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Job> ready;
  std::vector<std::size_t> waiting = graph.waiting_on;
  std::size_t unfinished = graph.size();
  DynSlab dyn;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (waiting[i] == 0) ready.push_back(static_cast<Job>(i));
  }

  class Ctx final : public TaskContext {
   public:
    Ctx(std::size_t task, int worker, std::mutex& mu, std::condition_variable& cv,
        std::vector<Job>& ready, std::size_t& unfinished, DynSlab& dyn)
        : task_(task), worker_(worker), mu_(mu), cv_(cv), ready_(ready),
          unfinished_(unfinished), dyn_(dyn) {}
    [[nodiscard]] std::size_t task() const override { return task_; }
    [[nodiscard]] int worker() const override { return worker_; }
    void spawn(Body fn) override {
      const Job job = encode_dynamic(dyn_.add(std::move(fn)));
      {
        std::scoped_lock lock(mu_);
        ++unfinished_;
        ready_.push_back(job);
      }
      cv_.notify_one();
    }

   private:
    std::size_t task_;
    int worker_;
    std::mutex& mu_;
    std::condition_variable& cv_;
    std::vector<Job>& ready_;
    std::size_t& unfinished_;
    DynSlab& dyn_;
  };

  auto worker = [&](int w) {
    while (true) {
      Job job;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !ready.empty() || unfinished == 0; });
        if (ready.empty()) return;
        job = ready.back();
        ready.pop_back();
      }
      if (job >= 0) {
        Ctx ctx(static_cast<std::size_t>(job), w, mu, cv, ready, unfinished, dyn);
        body(ctx);
      } else {
        Ctx ctx(kDynamicTask, w, mu, cv, ready, unfinished, dyn);
        dyn.take(decode_dynamic(job))(ctx);
      }
      {
        std::scoped_lock lock(mu);
        if (job >= 0) {
          for (const std::size_t d :
               graph.dependents[static_cast<std::size_t>(job)]) {
            if (--waiting[d] == 0) ready.push_back(static_cast<Job>(d));
          }
        }
        --unfinished;
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();
}

}  // namespace

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kWorkStealing: return "work-stealing";
    case SchedulerKind::kFixedPool: return "fixed-pool";
    case SchedulerKind::kMultiProcess: return "multi-process";
  }
  return "?";
}

void run_task_graph(SchedulerKind kind, int workers, const TaskGraph& graph,
                    const std::function<void(TaskContext&)>& body) {
  if (workers < 1) workers = 1;
  if (workers == 1) {
    run_inline(graph, body);
    return;
  }
  switch (kind) {
    case SchedulerKind::kWorkStealing:
    case SchedulerKind::kMultiProcess: {  // in-process fallback (see header)
      WorkStealingRun run(workers, graph, body);
      run.run();
      break;
    }
    case SchedulerKind::kFixedPool:
      run_fixed_pool(workers, graph, body);
      break;
  }
}

void run_task_graph(SchedulerKind kind, int workers, const TaskGraph& graph,
                    const std::function<void(std::size_t, int)>& body) {
  const auto wrapper = [&body](TaskContext& ctx) {
    body(ctx.task(), ctx.worker());
  };
  // A plain body can never spawn subtasks, so a 0/1-task graph gains nothing
  // from a worker pool — keep the cheap inline path for it. (Spawn-capable
  // bodies go through the TaskContext overload, where even a 1-task graph
  // must be able to parallelize its spawned work.)
  if (graph.size() <= 1) {
    run_inline(graph, wrapper);
    return;
  }
  run_task_graph(kind, workers, graph, wrapper);
}

}  // namespace plankton::sched
