// Deterministic fault injection for the shard transport and worker loop.
//
// A FaultPlan is a compact, human-writable description of *exactly when and
// how* a worker misbehaves, so every recovery path in the coordinator
// (EOF reap + reassign, torn-frame poison, heartbeat hang detection, bounded
// write retries) is driven by tests instead of theorized about. Plans are
// deterministic: the same plan over the same workload produces the same
// fault at the same frame, so a divergence reproduces from the plan string
// alone (docs/architecture.md "Resource governance & failure handling").
//
// Syntax: semicolon- or comma-separated directives.
//
//   crash@F      _exit immediately before writing outbound data frame F
//                (1-based; heartbeats are not counted)
//   torn@F       write the first half of data frame F, then _exit — the
//                coordinator sees a truncated stream mid-frame
//   hang@F:MS    sleep MS ms before writing data frame F; heartbeats keep
//                flowing (a slow-but-alive worker)
//   wedge@F:MS   hold the frame-write lock for MS ms before data frame F so
//                heartbeats stall too (MS=0: wedge forever — the worker is
//                alive but stuck and only the hard-deadline SIGKILL ends it)
//   shortw       chunk every outbound write into <=7-byte pieces (partial
//                write exercise for the reassembling decoder)
//   eintr@N      fail the first N write() attempts of every frame with a
//                synthetic EINTR (retry-storm exercise for bounded write_all)
//
// Socket-level faults — the connection misbehaves but the process survives,
// so the TCP reconnect/re-bootstrap and serve read-deadline paths are what
// recovers (a process-fault crash@F exercises respawn instead):
//
//   stall@F:MS     sleep MS ms with the connection idle before sending data
//                  frame F (no heartbeats either on transports that have
//                  them — a stalled-peer exercise for idle deadlines)
//   drop-conn@F    shutdown(2) the connection immediately before data frame
//                  F; the process stays alive to accept a reconnect
//   torn-tcp@F     write the first half of data frame F, then shutdown(2) —
//                  a torn stream whose peer process survives
//   slow-read@F:MS sleep MS ms before the F-th read from the connection
//                  (1-based; a slow consumer backing up the peer's writes)
//   slot=S       scope the plan to worker slot S (default: all workers)
//   gen*         faults persist across respawns of a slot; without it a
//                fault fires only at generation 0, so recovery always
//                succeeds within the reassignment cap
//   seed=X       derive a deterministic plan from X (from_seed) — used by
//                the fault-injection sweep to scale diversity
//
// Example: "crash@2;slot=1" — worker slot 1's first incarnation dies just
// before its second result frame; respawns behave normally.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace plankton::sched {

/// The faults one specific worker incarnation must act out (resolved from a
/// FaultPlan via for_worker). All-defaults means "behave normally".
struct WorkerFaults {
  std::uint64_t crash_at_frame = 0;  ///< 0 = off; 1-based outbound data frame
  std::uint64_t torn_at_frame = 0;
  std::uint64_t hang_at_frame = 0;
  std::uint32_t hang_ms = 0;
  std::uint64_t wedge_at_frame = 0;
  std::uint32_t wedge_ms = 0;  ///< 0 = wedge forever (until SIGKILL)
  bool short_writes = false;
  std::uint32_t eintr_burst = 0;

  // Socket-level faults (connection dies or stalls, process survives):
  std::uint64_t stall_at_frame = 0;
  std::uint32_t stall_ms = 0;
  std::uint64_t drop_conn_at_frame = 0;
  std::uint64_t torn_tcp_at_frame = 0;
  std::uint64_t slow_read_at = 0;  ///< 1-based read() index on the connection
  std::uint32_t slow_read_ms = 0;

  [[nodiscard]] bool any() const {
    return crash_at_frame != 0 || torn_at_frame != 0 || hang_at_frame != 0 ||
           wedge_at_frame != 0 || short_writes || eintr_burst != 0 ||
           stall_at_frame != 0 || drop_conn_at_frame != 0 ||
           torn_tcp_at_frame != 0 || slow_read_at != 0;
  }
};

struct FaultPlan {
  WorkerFaults faults;
  std::int32_t slot = -1;        ///< -1 = every worker slot
  bool all_generations = false;  ///< gen*: survive respawns
  std::uint64_t seed = 0;        ///< non-zero when derived via from_seed

  [[nodiscard]] bool empty() const { return !faults.any(); }

  /// The faults worker `slot` at respawn `generation` must act out. By
  /// default faults fire only at generation 0: the respawned worker is
  /// healthy and recovery completes within the reassignment cap.
  [[nodiscard]] WorkerFaults for_worker(int worker_slot,
                                        int generation) const {
    if (slot >= 0 && worker_slot != slot) return {};
    if (generation > 0 && !all_generations) return {};
    return faults;
  }

  /// Canonical plan string (parse(str()) round-trips).
  [[nodiscard]] std::string str() const;

  /// Deterministic plan derived from a seed: picks one fault class and a
  /// small frame index. The sweep tests iterate seeds to cover the matrix.
  [[nodiscard]] static FaultPlan from_seed(std::uint64_t seed);

  /// Like from_seed, but over the socket-fault classes only (stall,
  /// drop-conn, torn-tcp, slow-read) — the network-level sweep. Kept
  /// separate so from_seed stays byte-stable for the pinned process-fault
  /// matrix.
  [[nodiscard]] static FaultPlan from_seed_socket(std::uint64_t seed);
};

/// Parses the directive syntax above. Returns false (and sets `error`)
/// on unknown directives or malformed numbers; `out` is reset first.
[[nodiscard]] bool parse_fault_plan(std::string_view text, FaultPlan& out,
                                    std::string& error);

}  // namespace plankton::sched
