// Dependency-aware parallel task-graph execution (paper §3.2).
//
// PEC verification jobs form a DAG (the SCC condensation of the PEC
// dependency graph); each job becomes runnable when its dependencies have
// completed. Two strategies run such a graph:
//
//   kWorkStealing  per-worker deques: a worker pushes jobs it unblocks onto
//                  its own deque (locality: a dependent PEC reads the
//                  converged outcomes its dependency just produced) and pops
//                  LIFO; idle workers steal FIFO from the opposite end.
//                  Per-task ready-counters are atomics, so completing a task
//                  releases dependents without any global lock; workers park
//                  on a condition variable only when every deque is empty.
//
//   kFixedPool     the original single ready-list behind one mutex +
//                  condition variable — kept as the comparison baseline
//                  (bench/fig7b_large_fattrees prints both).
//
// The scheduler is deliberately generic (task indices + dependents lists):
// Verifier feeds it SCC tasks today; multi-process sharding can feed it
// shard-level jobs later.
//
// Spawn-capable bodies (the TaskContext overload) may additionally inject
// *dynamic* subtasks mid-run: a spawned job lands on the spawning worker's
// own deque and is stolen by idle workers like any static task. This is the
// scheduler side of splittable intra-PEC exploration — a frontier engine
// splits off half its pending states (engine/frontier.hpp, Frontier::split)
// and a shard coordinator turns each batch into a spawned job.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

namespace plankton::sched {

/// A DAG of schedulable tasks, indexed 0..size()-1.
struct TaskGraph {
  /// dependents[i] = tasks whose waiting count drops when i completes.
  std::vector<std::vector<std::size_t>> dependents;
  /// waiting_on[i] = number of unfinished dependencies of i (0 = ready).
  std::vector<std::size_t> waiting_on;

  [[nodiscard]] std::size_t size() const { return waiting_on.size(); }
};

enum class SchedulerKind : std::uint8_t {
  kWorkStealing = 0,
  kFixedPool = 1,
  /// Shard the task graph across forked worker processes (sched/shard.hpp).
  /// Only the Verifier can honor this kind — results must cross an explicit
  /// wire protocol, which a generic in-process body cannot. run_task_graph
  /// treats it as kWorkStealing so generic callers degrade gracefully.
  kMultiProcess = 2,
};

[[nodiscard]] const char* to_string(SchedulerKind kind);

/// Task id reported by TaskContext::task() for dynamically spawned subtasks
/// (they have no slot in the static graph).
inline constexpr std::size_t kDynamicTask = std::numeric_limits<std::size_t>::max();

/// Execution context of one task body under a spawn-capable run.
class TaskContext {
 public:
  virtual ~TaskContext() = default;
  /// Static graph index of the running task, or kDynamicTask for a spawned
  /// subtask.
  [[nodiscard]] virtual std::size_t task() const = 0;
  [[nodiscard]] virtual int worker() const = 0;
  /// Enqueues a dynamic subtask. It is immediately runnable (no
  /// dependencies), lands on this worker's deque (work-stealing) or the
  /// shared ready list (fixed pool), and may be stolen by any idle worker.
  /// The run does not return until every spawned subtask completed. Safe to
  /// call from static and dynamic task bodies alike.
  virtual void spawn(std::function<void(TaskContext&)> fn) = 0;
};

/// Runs body(task, worker) once for every task of `graph`, never before all
/// of the task's dependencies completed, on `workers` threads (worker ids
/// are 0..workers-1; workers == 1 runs inline on the calling thread). The
/// graph must be acyclic. `body` must be safe to call concurrently for
/// distinct tasks.
void run_task_graph(SchedulerKind kind, int workers, const TaskGraph& graph,
                    const std::function<void(std::size_t task, int worker)>& body);

/// Spawn-capable variant: the body receives a TaskContext and may inject
/// dynamic subtasks via spawn().
void run_task_graph(SchedulerKind kind, int workers, const TaskGraph& graph,
                    const std::function<void(TaskContext&)>& body);

}  // namespace plankton::sched
