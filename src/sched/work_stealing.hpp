// Dependency-aware parallel task-graph execution (paper §3.2).
//
// PEC verification jobs form a DAG (the SCC condensation of the PEC
// dependency graph); each job becomes runnable when its dependencies have
// completed. Two strategies run such a graph:
//
//   kWorkStealing  per-worker deques: a worker pushes jobs it unblocks onto
//                  its own deque (locality: a dependent PEC reads the
//                  converged outcomes its dependency just produced) and pops
//                  LIFO; idle workers steal FIFO from the opposite end.
//                  Per-task ready-counters are atomics, so completing a task
//                  releases dependents without any global lock; workers park
//                  on a condition variable only when every deque is empty.
//
//   kFixedPool     the original single ready-list behind one mutex +
//                  condition variable — kept as the comparison baseline
//                  (bench/fig7b_large_fattrees prints both).
//
// The scheduler is deliberately generic (task indices + dependents lists):
// Verifier feeds it SCC tasks today; multi-process sharding can feed it
// shard-level jobs later.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace plankton::sched {

/// A DAG of schedulable tasks, indexed 0..size()-1.
struct TaskGraph {
  /// dependents[i] = tasks whose waiting count drops when i completes.
  std::vector<std::vector<std::size_t>> dependents;
  /// waiting_on[i] = number of unfinished dependencies of i (0 = ready).
  std::vector<std::size_t> waiting_on;

  [[nodiscard]] std::size_t size() const { return waiting_on.size(); }
};

enum class SchedulerKind : std::uint8_t {
  kWorkStealing = 0,
  kFixedPool = 1,
};

[[nodiscard]] const char* to_string(SchedulerKind kind);

/// Runs body(task, worker) once for every task of `graph`, never before all
/// of the task's dependencies completed, on `workers` threads (worker ids
/// are 0..workers-1; workers == 1 runs inline on the calling thread). The
/// graph must be acyclic. `body` must be safe to call concurrently for
/// distinct tasks.
void run_task_graph(SchedulerKind kind, int workers, const TaskGraph& graph,
                    const std::function<void(std::size_t task, int worker)>& body);

}  // namespace plankton::sched
