#include "sched/deps.hpp"

#include <algorithm>

namespace plankton {
namespace {

/// Iterative Tarjan SCC over the PEC dependency graph.
class Tarjan {
 public:
  explicit Tarjan(const std::vector<std::vector<PecId>>& adj)
      : adj_(adj),
        index_(adj.size(), kUnvisited),
        low_(adj.size(), 0),
        on_stack_(adj.size(), 0),
        scc_of_(adj.size(), 0) {}

  void run() {
    for (PecId v = 0; v < adj_.size(); ++v) {
      if (index_[v] == kUnvisited) strongconnect(v);
    }
    // Tarjan emits SCCs in reverse topological order (a component is emitted
    // only after everything it depends on): component k's dependencies all
    // have smaller ids already.
  }

  [[nodiscard]] std::vector<std::uint32_t>&& scc_of() { return std::move(scc_of_); }
  [[nodiscard]] std::size_t count() const { return scc_count_; }

 private:
  static constexpr std::uint32_t kUnvisited = ~std::uint32_t{0};

  void strongconnect(PecId root) {
    struct Frame {
      PecId v;
      std::size_t edge = 0;
    };
    std::vector<Frame> frames{{root, 0}};
    visit(root);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.edge < adj_[f.v].size()) {
        const PecId w = adj_[f.v][f.edge++];
        if (index_[w] == kUnvisited) {
          visit(w);
          frames.push_back(Frame{w, 0});
        } else if (on_stack_[w] != 0) {
          low_[f.v] = std::min(low_[f.v], index_[w]);
        }
      } else {
        if (low_[f.v] == index_[f.v]) {
          while (true) {
            const PecId w = stack_.back();
            stack_.pop_back();
            on_stack_[w] = 0;
            scc_of_[w] = static_cast<std::uint32_t>(scc_count_);
            if (w == f.v) break;
          }
          ++scc_count_;
        }
        const PecId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low_[frames.back().v] = std::min(low_[frames.back().v], low_[v]);
        }
      }
    }
  }

  void visit(PecId v) {
    index_[v] = next_index_;
    low_[v] = next_index_;
    ++next_index_;
    stack_.push_back(v);
    on_stack_[v] = 1;
  }

  const std::vector<std::vector<PecId>>& adj_;
  std::vector<std::uint32_t> index_, low_;
  std::vector<std::uint8_t> on_stack_;
  std::vector<std::uint32_t> scc_of_;
  std::vector<PecId> stack_;
  std::uint32_t next_index_ = 0;
  std::size_t scc_count_ = 0;
};

}  // namespace

PecDependencies compute_dependencies(const Network& net, const PecSet& pecs) {
  PecDependencies out;
  const std::size_t n = pecs.pecs.size();
  out.depends_on.resize(n);
  out.dependents.resize(n);
  out.self_loop.assign(n, 0);

  auto add_edge = [&out](PecId from, PecId to) {
    if (from == to) {
      out.self_loop[from] = 1;
      return;
    }
    auto& d = out.depends_on[from];
    if (std::find(d.begin(), d.end(), to) == d.end()) {
      d.push_back(to);
      out.dependents[to].push_back(from);
    }
  };

  // Loopback PECs every iBGP speaker's routes resolve through.
  std::vector<PecId> ibgp_loopback_pecs;
  for (NodeId dev = 0; dev < net.devices.size(); ++dev) {
    const auto& cfg = net.device(dev);
    if (!cfg.bgp) continue;
    const bool has_ibgp =
        std::any_of(cfg.bgp->sessions.begin(), cfg.bgp->sessions.end(),
                    [](const BgpSession& s) { return s.ibgp; });
    if (has_ibgp && cfg.loopback != IpAddr()) {
      ibgp_loopback_pecs.push_back(pecs.find(cfg.loopback));
    }
  }
  std::sort(ibgp_loopback_pecs.begin(), ibgp_loopback_pecs.end());
  ibgp_loopback_pecs.erase(
      std::unique(ibgp_loopback_pecs.begin(), ibgp_loopback_pecs.end()),
      ibgp_loopback_pecs.end());

  for (PecId p = 0; p < n; ++p) {
    const Pec& pec = pecs.pecs[p];
    for (const auto& pp : pec.prefixes) {
      // Recursive static routes: dependency on the PEC of the next-hop IP.
      for (const auto& [dev, idx] : pp.static_routes) {
        const StaticRoute& sr = net.device(dev).statics[idx];
        if (sr.via_ip) add_edge(p, pecs.find(*sr.via_ip));
      }
      // BGP-carried prefixes depend on the loopback PECs of iBGP speakers.
      if (!pp.bgp_origins.empty()) {
        for (const PecId lb : ibgp_loopback_pecs) add_edge(p, lb);
      }
    }
  }

  Tarjan tarjan(out.depends_on);
  tarjan.run();
  out.scc_of = tarjan.scc_of();
  out.sccs.resize(tarjan.count());
  for (PecId p = 0; p < n; ++p) out.sccs[out.scc_of[p]].push_back(p);
  out.scc_deps.resize(tarjan.count());
  for (PecId p = 0; p < n; ++p) {
    for (const PecId q : out.depends_on[p]) {
      const std::uint32_t sp = out.scc_of[p];
      const std::uint32_t sq = out.scc_of[q];
      if (sp == sq) continue;
      auto& d = out.scc_deps[sp];
      if (std::find(d.begin(), d.end(), sq) == d.end()) d.push_back(sq);
    }
  }
  return out;
}

}  // namespace plankton
