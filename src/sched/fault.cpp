#include "sched/fault.hpp"

#include "netbase/hash.hpp"

namespace plankton::sched {
namespace {

/// Parses a decimal uint64 from `s` in full; false on empty/garbage.
bool parse_u64(std::string_view s, std::uint64_t& v) {
  if (s.empty() || s.size() > 19) return false;
  v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

/// Splits "name@A:B" into its parts; `arg2` stays empty without a colon.
void split_directive(std::string_view d, std::string_view& name,
                     std::string_view& arg1, std::string_view& arg2) {
  name = d;
  arg1 = arg2 = {};
  const std::size_t at = d.find('@');
  if (at == std::string_view::npos) return;
  name = d.substr(0, at);
  arg1 = d.substr(at + 1);
  const std::size_t colon = arg1.find(':');
  if (colon == std::string_view::npos) return;
  arg2 = arg1.substr(colon + 1);
  arg1 = arg1.substr(0, colon);
}

}  // namespace

bool parse_fault_plan(std::string_view text, FaultPlan& out,
                      std::string& error) {
  out = FaultPlan{};
  error.clear();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view d = text.substr(pos, end - pos);
    pos = end + 1;
    while (!d.empty() && d.front() == ' ') d.remove_prefix(1);
    while (!d.empty() && d.back() == ' ') d.remove_suffix(1);
    if (d.empty()) {
      if (end == text.size()) break;
      continue;
    }
    std::string_view name, arg1, arg2;
    split_directive(d, name, arg1, arg2);
    std::uint64_t v1 = 0, v2 = 0;
    const bool has1 = parse_u64(arg1, v1);
    const bool has2 = parse_u64(arg2, v2);
    auto fail = [&](const char* why) {
      error = std::string(why) + ": '" + std::string(d) + "'";
      out = FaultPlan{};
      return false;
    };
    if (name == "crash") {
      if (!has1 || v1 == 0 || !arg2.empty()) return fail("crash needs @F");
      out.faults.crash_at_frame = v1;
    } else if (name == "torn") {
      if (!has1 || v1 == 0 || !arg2.empty()) return fail("torn needs @F");
      out.faults.torn_at_frame = v1;
    } else if (name == "hang") {
      if (!has1 || v1 == 0 || !has2) return fail("hang needs @F:MS");
      out.faults.hang_at_frame = v1;
      out.faults.hang_ms = static_cast<std::uint32_t>(v2);
    } else if (name == "wedge") {
      if (!has1 || v1 == 0 || !has2) return fail("wedge needs @F:MS");
      out.faults.wedge_at_frame = v1;
      out.faults.wedge_ms = static_cast<std::uint32_t>(v2);
    } else if (name == "shortw") {
      if (!arg1.empty()) return fail("shortw takes no argument");
      out.faults.short_writes = true;
    } else if (name == "eintr") {
      if (!has1 || v1 == 0 || !arg2.empty()) return fail("eintr needs @N");
      out.faults.eintr_burst = static_cast<std::uint32_t>(v1);
    } else if (name == "stall") {
      if (!has1 || v1 == 0 || !has2) return fail("stall needs @F:MS");
      out.faults.stall_at_frame = v1;
      out.faults.stall_ms = static_cast<std::uint32_t>(v2);
    } else if (name == "drop-conn") {
      if (!has1 || v1 == 0 || !arg2.empty()) return fail("drop-conn needs @F");
      out.faults.drop_conn_at_frame = v1;
    } else if (name == "torn-tcp") {
      if (!has1 || v1 == 0 || !arg2.empty()) return fail("torn-tcp needs @F");
      out.faults.torn_tcp_at_frame = v1;
    } else if (name == "slow-read") {
      if (!has1 || v1 == 0 || !has2) return fail("slow-read needs @F:MS");
      out.faults.slow_read_at = v1;
      out.faults.slow_read_ms = static_cast<std::uint32_t>(v2);
    } else if (name == "gen*") {
      out.all_generations = true;
    } else if (d.substr(0, 5) == "slot=") {
      if (!parse_u64(d.substr(5), v1)) return fail("slot needs =S");
      out.slot = static_cast<std::int32_t>(v1);
    } else if (d.substr(0, 5) == "seed=") {
      if (!parse_u64(d.substr(5), v1)) return fail("seed needs =X");
      const std::int32_t keep_slot = out.slot;
      const bool keep_gens = out.all_generations;
      out = FaultPlan::from_seed(v1);
      if (keep_slot >= 0) out.slot = keep_slot;
      out.all_generations = out.all_generations || keep_gens;
    } else {
      return fail("unknown fault directive");
    }
    if (end == text.size()) break;
  }
  return true;
}

std::string FaultPlan::str() const {
  std::string out;
  auto add = [&out](std::string piece) {
    if (!out.empty()) out += ';';
    out += std::move(piece);
  };
  if (faults.crash_at_frame != 0) {
    add("crash@" + std::to_string(faults.crash_at_frame));
  }
  if (faults.torn_at_frame != 0) {
    add("torn@" + std::to_string(faults.torn_at_frame));
  }
  if (faults.hang_at_frame != 0) {
    add("hang@" + std::to_string(faults.hang_at_frame) + ":" +
        std::to_string(faults.hang_ms));
  }
  if (faults.wedge_at_frame != 0) {
    add("wedge@" + std::to_string(faults.wedge_at_frame) + ":" +
        std::to_string(faults.wedge_ms));
  }
  if (faults.short_writes) add("shortw");
  if (faults.eintr_burst != 0) {
    add("eintr@" + std::to_string(faults.eintr_burst));
  }
  if (faults.stall_at_frame != 0) {
    add("stall@" + std::to_string(faults.stall_at_frame) + ":" +
        std::to_string(faults.stall_ms));
  }
  if (faults.drop_conn_at_frame != 0) {
    add("drop-conn@" + std::to_string(faults.drop_conn_at_frame));
  }
  if (faults.torn_tcp_at_frame != 0) {
    add("torn-tcp@" + std::to_string(faults.torn_tcp_at_frame));
  }
  if (faults.slow_read_at != 0) {
    add("slow-read@" + std::to_string(faults.slow_read_at) + ":" +
        std::to_string(faults.slow_read_ms));
  }
  if (slot >= 0) add("slot=" + std::to_string(slot));
  if (all_generations) add("gen*");
  return out;
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  const std::uint64_t h = hash_mix(seed + 0xfa17u);
  // One fault class per seed keeps each swept run attributable; the frame
  // index stays small so the fault actually fires on tiny test workloads.
  const std::uint64_t frame = 1 + (hash_mix(h) % 3);
  switch (h % 6) {
    case 0: plan.faults.crash_at_frame = frame; break;
    case 1: plan.faults.torn_at_frame = frame; break;
    case 2:
      plan.faults.hang_at_frame = frame;
      plan.faults.hang_ms = 20;
      break;
    case 3: plan.faults.short_writes = true; break;
    case 4: plan.faults.eintr_burst = 1 + (hash_mix(h) % 4); break;
    case 5:
      plan.faults.crash_at_frame = frame;
      plan.faults.short_writes = true;
      break;
  }
  return plan;
}

FaultPlan FaultPlan::from_seed_socket(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  const std::uint64_t h = hash_mix(seed + 0x50c7e7u);
  const std::uint64_t frame = 1 + (hash_mix(h) % 3);
  switch (h % 4) {
    case 0:
      plan.faults.stall_at_frame = frame;
      plan.faults.stall_ms = 20;
      break;
    case 1: plan.faults.drop_conn_at_frame = frame; break;
    case 2: plan.faults.torn_tcp_at_frame = frame; break;
    case 3:
      plan.faults.slow_read_at = frame;
      plan.faults.slow_read_ms = 20;
      break;
  }
  return plan;
}

}  // namespace plankton::sched
