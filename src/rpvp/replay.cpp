#include "rpvp/replay.hpp"

#include <vector>

namespace plankton {

ReplayResult replay_trail(const Network& net, const Pec& pec, const Trail& trail,
                          const UpstreamProvider* upstream) {
  ReplayResult result;
  result.failures = net.topo.no_failures();

  std::vector<PrefixTask> tasks = make_tasks(net, pec);
  ModelContext ctx;
  ctx.net = &net;
  std::vector<std::vector<RouteId>> ribs(
      tasks.size(), std::vector<RouteId>(net.topo.node_count(), kNoRoute));
  int current_task = -1;
  bool prepared = false;
  std::size_t upstream_choice = 0;

  auto fail = [&result](std::string message) {
    result.ok = false;
    result.error = std::move(message);
    return result;
  };

  auto prepare_all = [&] {
    std::vector<const UpstreamResolver*> ups;
    if (upstream != nullptr) {
      ups = upstream->outcomes(result.failures);
      if (ups.empty()) return false;
      ctx.upstream = ups[upstream_choice < ups.size() ? upstream_choice : 0];
    }
    for (auto& t : tasks) t.process->prepare(result.failures, ctx);
    return true;
  };

  for (const TrailEvent& e : trail.events) {
    switch (e.kind) {
      case TrailEvent::Kind::kFailLink:
        if (prepared) return fail("failure event after protocol start");
        if (e.link >= net.topo.link_count()) return fail("unknown link in trail");
        result.failures.fail(e.link);
        break;
      case TrailEvent::Kind::kUpstreamOutcome:
        if (prepared) return fail("upstream choice after protocol start");
        upstream_choice = e.phase;
        break;
      case TrailEvent::Kind::kBeginPrefix: {
        if (!prepared) {
          if (!prepare_all()) return fail("no upstream outcome for failure set");
          prepared = true;
        }
        const int next = static_cast<int>(e.phase);
        if (next != current_task + 1 || next >= static_cast<int>(tasks.size())) {
          return fail("out-of-order prefix phase in trail");
        }
        current_task = next;
        auto& proc = *tasks[current_task].process;
        for (const NodeId o : proc.origins()) {
          ribs[current_task][o] = proc.origin_route(o, ctx);
        }
        break;
      }
      case TrailEvent::Kind::kSelect: {
        if (current_task < 0) return fail("select before any prefix phase");
        auto& proc = *tasks[current_task].process;
        auto& rib = ribs[current_task];
        if (e.node >= rib.size()) return fail("unknown node in trail");
        RouteId route = kNoRoute;
        if (e.peer == kNoNode) {
          // Merged (OSPF ECMP) update: recompute from current neighbor state.
          std::vector<RouteId> advs;
          for (const NodeId p : proc.peers(e.node)) {
            advs.push_back(proc.advertised(p, e.node, rib[p], ctx));
          }
          route = proc.merge(e.node, advs, ctx);
        } else {
          route = proc.advertised(e.peer, e.node, rib[e.peer], ctx);
        }
        if (route == kNoRoute) {
          return fail("trail step not applicable: " + net.topo.name(e.node) +
                      " has no usable update" +
                      (e.peer != kNoNode ? " from " + net.topo.name(e.peer) : ""));
        }
        rib[e.node] = route;
        break;
      }
      case TrailEvent::Kind::kWithdraw:
        if (current_task < 0) return fail("withdraw before any prefix phase");
        ribs[current_task][e.node] = kNoRoute;
        break;
    }
  }
  if (!prepared && !prepare_all()) {
    return fail("no upstream outcome for failure set");
  }

  std::vector<TaskRib> task_ribs;
  task_ribs.reserve(tasks.size());
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    task_ribs.push_back(TaskRib{tasks[t].prefix_idx, tasks[t].proto, ribs[t]});
  }
  result.dp = build_dataplane(net, pec, result.failures, task_ribs, ctx);
  result.ok = true;
  return result;
}

}  // namespace plankton
