// Per-directed-edge advertisement memoization for the RPVP hot path.
//
// RoutingProcess::advertised(p, n, best(p)) is a pure function of the
// directed session edge and the peer's current best route, given the
// prepared failure set and the bound upstream outcome (the purity contract
// in protocols/process.hpp). The explorer consults it for every peer of
// every refreshed node on every apply/undo — but a peer's best route only
// changes when a move touches that peer, so the result for (edge, route) is
// recomputed identically millions of times. The AdCache keeps one entry per
// directed live session edge: the last (input route, output route) pair,
// valid while the cache generation matches.
//
// Invalidation is by generation counter: Explorer::check_failure_set bumps
// the generation once per (failure set, upstream outcome index) before
// binding, because both the live-peer lists and — for iBGP, whose import
// result depends on ctx.upstream IGP costs — the advertised values
// themselves change with either. Results are therefore never reused across
// upstream-outcome alternatives (the multi-protocol / iBGP bypass the cache
// would otherwise need is subsumed by the generation key).
//
// Memoizing is exploration-neutral: advertised() interns its result, so the
// memoized RouteId is byte-for-byte the id a recomputation would return, and
// no path/route-table entry the recomputation would create can be missing
// (it was created when the entry was filled). Stats counters record hits and
// misses (checker/stats.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "checker/stats.hpp"
#include "protocols/process.hpp"

namespace plankton {

class AdCache {
 public:
  /// Sizes the per-task tables. Call once before exploration starts.
  void reset(std::size_t num_tasks) {
    tasks_.clear();
    tasks_.resize(num_tasks);
  }

  /// Starts a new generation: every cached entry becomes stale. Must be
  /// called whenever the prepared failure set or the bound upstream outcome
  /// changes (see file comment).
  void invalidate() { ++gen_; }

  /// Rebuilds the slot layout of `task` from the process's live peer lists
  /// (call after RoutingProcess::prepare). Slot = offset[n] + peer index,
  /// so a lookup is one add and one array access.
  void bind(std::size_t task, const RoutingProcess& proc,
            std::size_t node_count) {
    PerTask& t = tasks_[task];
    t.offset.resize(node_count + 1);
    std::uint32_t total = 0;
    for (NodeId n = 0; n < node_count; ++n) {
      t.offset[n] = total;
      total += static_cast<std::uint32_t>(proc.peers(n).size());
    }
    t.offset[node_count] = total;
    if (t.entries.size() < total) t.entries.resize(total);
  }

  /// advertised(p, n, peer_route) through the memo. `peer_idx` is the index
  /// of `p` in proc.peers(n) for the current failure set.
  RouteId advertised(const RoutingProcess& proc, std::size_t task, NodeId n,
                     std::size_t peer_idx, NodeId p, RouteId peer_route,
                     ModelContext& ctx, SearchStats& stats) {
    if (peer_route == kNoRoute) return kNoRoute;  // ⊥ maps to ⊥ by contract
    Entry& e = tasks_[task].entries[tasks_[task].offset[n] + peer_idx];
    if (e.gen == gen_ && e.in == peer_route) {
      ++stats.ad_cache_hits;
      return e.out;
    }
    ++stats.ad_cache_misses;
    const RouteId out = proc.advertised(p, n, peer_route, ctx);
    e.in = peer_route;
    e.out = out;
    e.gen = gen_;
    return out;
  }

  [[nodiscard]] std::size_t bytes() const {
    std::size_t b = 0;
    for (const PerTask& t : tasks_) {
      b += t.offset.capacity() * sizeof(std::uint32_t) +
           t.entries.capacity() * sizeof(Entry);
    }
    return b;
  }

 private:
  struct Entry {
    RouteId in = kNoRoute;
    RouteId out = kNoRoute;
    std::uint64_t gen = 0;  ///< 0 never matches: gen_ starts at 1
  };
  struct PerTask {
    std::vector<std::uint32_t> offset;  ///< [node] -> first slot, [n+1] = end
    std::vector<Entry> entries;         ///< one per directed live edge
  };
  std::vector<PerTask> tasks_;
  std::uint64_t gen_ = 1;
};

}  // namespace plankton
