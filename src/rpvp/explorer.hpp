// The explicit-state model checker for RPVP (paper §3.3–§3.4, §4).
//
// One Explorer instance performs the exhaustive search for one PEC (or one
// SCC of mutually-dependent PECs, which share a task list):
//
//   failure phase (§4.1.4, §4.3)
//     └─ upstream-outcome choice (§3.2)
//          └─ per-prefix RPVP phases (§3.3), each driven by a pluggable
//             SearchEngine over (node, update) choices with:
//               · consistent-execution pruning        (§4.1.1, Theorem 1)
//               · deterministic-node execution        (§4.1.2, Theorem 2)
//               · decision independence (ample sets)  (§4.1.3)
//               · policy-based pruning + influence    (§4.2)
//               · pluggable visited backends          (§4.4, Fig. 9)
//                  └─ FIB assembly + policy callback  (§3.5)
//
// The Explorer is the SearchModel: it owns protocol semantics and pruning.
// State identity lives in the StateCodec, visited storage behind the
// VisitedBackend, and search order in the SearchEngine (src/engine/) — each
// replaceable without touching the protocols.
//
// Every optimization is individually toggleable for the Fig. 8 ablations.
#pragma once

#include <chrono>
#include <memory>
#include <unordered_map>
#include <vector>

#include "checker/stats.hpp"
#include "checker/trail.hpp"
#include "dataplane/fib.hpp"
#include "engine/active_set.hpp"
#include "engine/independence.hpp"
#include "engine/search.hpp"
#include "engine/state_codec.hpp"
#include "engine/visited.hpp"
#include "eqclass/dec.hpp"
#include "pec/pec.hpp"
#include "policy/policy.hpp"
#include "protocols/process.hpp"
#include "rpvp/ad_cache.hpp"

namespace plankton {

struct ExploreOptions {
  int max_failures = 0;

  // §4 optimizations (all on by default; Fig. 8 turns them off):
  bool consistent_only = true;       ///< §4.1.1
  bool deterministic_nodes = true;   ///< §4.1.2
  /// §4.1.2 BGP-specific detection only (the paper's Fig. 8 iBGP ablation
  /// disables "the detection of deterministic nodes in BGP" while keeping
  /// OSPF's SPF ordering).
  bool det_nodes_bgp = true;
  bool decision_independence = true; ///< §4.1.3
  bool lec_failures = true;          ///< §4.3 (DEC/LEC representative failures)
  bool policy_pruning = true;        ///< §4.2
  bool suppress_equivalent = true;   ///< §3.5 equivalence of converged states

  /// Visited-set storage policy (§4.4, Fig. 9): exact, hash-compacted, or
  /// bitstate/Bloom. `bloom_bits` sizes the kBitstate filter.
  VisitedKind visited = VisitedKind::kExact;
  std::size_t bloom_bits = std::size_t{1} << 27;

  /// OSPF ECMP merging (the paper's special-case multipath deviation,
  /// §3.4.2). When false, equal-cost updates are processed one peer at a
  /// time exactly as RPVP Algorithm 1 states them — the "unoptimized model"
  /// of the Fig. 8 ablations (single best path, heavy irrelevant
  /// non-determinism).
  bool merge_updates = true;

  // Hot-path mechanics (exploration-neutral: these change how states are
  // expanded, never which states are explored — the equivalence tests
  // assert bit-identical stats across the on/off matrix):
  /// Memoize advertised() per directed live session edge (rpvp/ad_cache.hpp).
  bool ad_cache = true;
  /// Dynamic partial-order reduction over advertisement interleavings:
  /// sleep sets + (under DFS) source-set backtracking, driven by the
  /// footprint commutativity oracle (engine/independence.hpp). Prunes
  /// redundant interleavings only — verdicts and violation sets are
  /// identical to por = false; state counts legitimately drop
  /// (docs/architecture.md "Partial-order reduction"; CLI --no-por).
  /// Active for exhaustive engines with the exact visited backend; the
  /// model turns it off itself whenever a composition it cannot prove
  /// sound would arise (see Explorer's constructor).
  bool por = true;
  /// Consume the incrementally maintained enabled set in expand() instead
  /// of rescanning every process member (engine/active_set.hpp).
  bool incremental_expand = true;

  std::uint64_t max_states = 0;               ///< 0 = unlimited
  std::chrono::milliseconds time_limit{0};    ///< 0 = none
  /// Resource governance for this exploration (checker/budget.hpp). The
  /// deadline composes with `time_limit` (whichever is earlier wins); the
  /// state cap composes with `max_states` (smaller non-zero wins); the
  /// memory cap is checked against the checker's own deterministic byte
  /// accounting every 256 steps. Exhaustion sets ExploreResult::
  /// budget_tripped and the verdict degrades to kInconclusive — never a
  /// hold.
  ResourceBudget budget;
  bool find_all_violations = false;
  bool record_outcomes = false;  ///< keep converged states for dependent PECs

  /// Batfish-style simulation (paper Fig. 1, "all data planes" row): follow
  /// a single non-deterministic execution path instead of exploring all of
  /// them — the kSingleExecution search engine. Sound for violations it
  /// finds, but misses violations that only occur under other advertisement
  /// orderings (e.g. BGP wedgies). Takes precedence over `engine_kind`.
  bool simulation = false;

  /// Exploration strategy for the per-prefix move tree (engine/search.hpp):
  /// kDfs (the paper's strategy) or one of the frontier engines. Every
  /// exhaustive engine visits the same state set; the frontier engines only
  /// reorder it (tests/test_engine_differential.cpp).
  SearchEngineKind engine_kind = SearchEngineKind::kDfs;
  /// Seeds kRandomRestart's pop order; a failing fuzz instance reproduces
  /// from (topology seed, engine seed) alone.
  std::uint64_t engine_seed = 1;
  /// Frontier work-sharing exercise knob (SearchEngineConfig::split_every).
  std::uint32_t engine_split_every = 0;
  /// kRandomRestart restart schedule: Luby by default, kFixedPeriod keeps
  /// the original every-N-pops behavior.
  RestartPolicy engine_restart_policy = RestartPolicy::kLuby;

  // Intra-PEC work export (SearchEngineConfig's export block; the sink is
  // bound by the shard worker — see sched::ShardExportHooks). Only sound
  // for single-phase explorations: the verifier arms these exclusively when
  // max_failures == 0 and the PEC has no upstream choice, so the outermost
  // engine invocation is the entire search.
  std::function<bool(std::vector<StateSnapshot>&&)> engine_export_fn;
  std::uint32_t engine_export_check_every = 0;  ///< 0 disables export offers
  std::size_t engine_export_min_frontier = 8;
  /// Receiving side of an export: seed the outermost frontier from these
  /// snapshots instead of the phase root.
  std::vector<StateSnapshot> engine_seed_frontier;

  [[nodiscard]] SearchEngineKind engine() const {
    return simulation ? SearchEngineKind::kSingleExecution : engine_kind;
  }

  [[nodiscard]] SearchEngineConfig engine_config() const {
    SearchEngineConfig c;
    c.seed = engine_seed;
    c.split_every = engine_split_every;
    c.restart_policy = engine_restart_policy;
    c.export_fn = engine_export_fn;
    c.export_check_every = engine_export_check_every;
    c.export_min_frontier = engine_export_min_frontier;
    c.seed_frontier = engine_seed_frontier;
    return c;
  }

  [[nodiscard]] static ExploreOptions naive() {
    ExploreOptions o;
    o.consistent_only = false;
    o.deterministic_nodes = false;
    o.decision_independence = false;
    o.lec_failures = false;
    o.policy_pruning = false;
    o.suppress_equivalent = false;
    o.por = false;
    return o;
  }
};

/// One per-prefix control-plane execution (§3.3: "executing the control
/// plane for each prefix in the PEC separately").
struct PrefixTask {
  std::uint8_t prefix_idx = 0;
  Protocol proto = Protocol::kOspf;
  std::unique_ptr<RoutingProcess> process;
};

/// Builds the task list for a PEC from its per-prefix config slices.
std::vector<PrefixTask> make_tasks(const Network& net, const Pec& pec);

struct Violation {
  FailureSet failures;
  Trail trail;
  std::string trail_text;  ///< trail rendered against the run's route tables
  std::string message;
};

/// A recorded converged state, consumed by dependent PECs via the scheduler
/// (the paper writes these to an in-memory filesystem; we keep them in an
/// in-memory store).
struct PecOutcome {
  FailureSet failures;
  std::uint64_t upstream_hash = 0;
  DataPlane dp;
  /// Per node: IGP cost of the best OSPF route for the most specific prefix
  /// (kInfiniteCost when none) — what iBGP ranking needs from this PEC.
  std::vector<std::uint32_t> igp_cost;
  std::uint64_t hash = 0;  ///< identity for downstream context hashing
};

struct ExploreResult {
  bool holds = true;
  bool timed_out = false;
  bool state_limit_hit = false;
  bool memory_limit_hit = false;
  /// Which budget axis ended the search early (kNone = ran to completion).
  BudgetKind budget_tripped = BudgetKind::kNone;
  /// False when coverage was probabilistic: a lossy visited backend was
  /// selected up front, or the memory-pressure degradation migrated the
  /// exact store to hash compaction mid-run. A `holds` with
  /// exhaustive == false is a coverage claim, not a proof.
  bool exhaustive = true;
  std::vector<Violation> violations;
  std::vector<PecOutcome> outcomes;
  SearchStats stats;

  /// Sound classification: a found violation is conclusive even from a
  /// partial search; a completed search holds; an exhausted budget is
  /// inconclusive — never reported as a hold.
  [[nodiscard]] Verdict verdict() const {
    if (!holds) return Verdict::kViolated;
    if (budget_tripped != BudgetKind::kNone || timed_out || state_limit_hit ||
        memory_limit_hit) {
      return Verdict::kInconclusive;
    }
    return Verdict::kHolds;
  }
};

/// Supplies, per coordinated failure set, the alternative upstream converged
/// outcomes this PEC may observe (§3.2). Nullptr entries are allowed and mean
/// "no upstream information".
class UpstreamProvider {
 public:
  virtual ~UpstreamProvider() = default;
  [[nodiscard]] virtual std::vector<const UpstreamResolver*> outcomes(
      const FailureSet& failures) const = 0;
  /// True when some other PEC depends on this one (disables policy pruning
  /// and LEC failure reduction, §4.2/§4.3).
  [[nodiscard]] virtual bool has_dependents() const { return false; }
};

class Explorer final : public SearchModel {
 public:
  Explorer(const Network& net, const Pec& pec, std::vector<PrefixTask> tasks,
           const Policy& policy, ExploreOptions opts,
           const UpstreamProvider* upstream = nullptr);

  ExploreResult run();

  /// The interning context (exposed so callers can render trails).
  [[nodiscard]] const ModelContext& context() const { return ctx_; }

  // -- SearchModel (driven by the SearchEngine) -----------------------------
  bool budget_exhausted() override;
  bool mark_visited(std::size_t task_idx) override;
  Step expand(std::size_t task_idx, std::vector<SearchMove>& moves,
              std::size_t move_budget) override;
  void apply(std::size_t task_idx, SearchMove& m) override;
  void undo(std::size_t task_idx, const SearchMove& m) override;
  SearchFlow advance(std::size_t task_idx) override;
  [[nodiscard]] std::uint64_t state_key_after(std::size_t task_idx,
                                              const SearchMove& m) const override {
    return codec_.preview_key(task_idx, m.node, rib_[task_idx][m.node], m.route);
  }
  void export_snapshot(StateSnapshot& s) override;
  [[nodiscard]] bool import_snapshot(StateSnapshot& s) override;
  [[nodiscard]] std::size_t por_words() const override;
  void por_attach_sleep(const std::uint64_t* sleep) override;
  void por_child_sleep(std::size_t task_idx, const SearchMove& m,
                       const std::uint64_t* prior, std::uint64_t* out) override;
  void por_extend(std::size_t task_idx, std::vector<SearchMove>& moves) override;

 private:
  using Flow = SearchFlow;

  // -- failure phase --------------------------------------------------------
  Flow explore_failures(LinkId next_link);
  Flow check_failure_set();
  [[nodiscard]] std::vector<LinkId> failure_candidates(LinkId next_link) const;
  /// Failure-independent DEC node signatures, computed once and cached
  /// (they depend only on config, policy and PEC — not on failures_).
  [[nodiscard]] const std::vector<std::uint64_t>& dec_signatures() const;

  // -- prefix phases --------------------------------------------------------
  Flow begin_phase(std::size_t task_idx);
  Flow handle_converged();

  // per-node status maintenance
  void refresh_node(std::size_t task_idx, NodeId n);
  void refresh_around(std::size_t task_idx, NodeId n);
  void collect_updates(std::size_t task_idx, NodeId n);
  [[nodiscard]] bool influence_allows(std::size_t task_idx, NodeId n) const;
  void compute_influencers(std::size_t task_idx);
  [[nodiscard]] bool sources_all_committed(std::size_t task_idx) const;

  /// advertised(p, n, rib[p]) through the AdCache when enabled. `peer_idx`
  /// is p's index in proc.peers(n) under the current failure set.
  RouteId adv(const RoutingProcess& proc, std::size_t task_idx, NodeId n,
              std::size_t peer_idx, NodeId p) {
    const RouteId in = rib_[task_idx][p];
    if (ad_cache_on_) {
      return ad_cache_.advertised(proc, task_idx, n, peer_idx, p, in, ctx_,
                                  result_.stats);
    }
    return proc.advertised(p, n, in, ctx_);
  }

  const Network& net_;
  const Pec& pec_;
  std::vector<PrefixTask> tasks_;
  const Policy& policy_;
  ExploreOptions opts_;
  const UpstreamProvider* upstream_provider_;

  ModelContext ctx_;
  FailureSet failures_;
  StateCodec codec_;                        ///< canonical state identity
  std::unique_ptr<VisitedBackend> visited_; ///< pluggable visited storage
  std::unique_ptr<SearchEngine> engine_;    ///< pluggable search strategy
  VisitedSet failure_sets_seen_;
  VisitedSet signatures_seen_;
  VisitedSet outcomes_seen_;

  // Per-task state while exploring:
  struct NodeStatus {
    bool enabled = false;
    bool conflict = false;  ///< committed node wants to change (§4.1.1)
    RouteId merge_candidate = kNoRoute;
  };
  std::vector<std::vector<RouteId>> rib_;           ///< [task][node]
  std::vector<std::vector<NodeStatus>> status_;     ///< [task][node]
  std::vector<std::vector<std::uint8_t>> is_origin_;///< [task][node]
  std::vector<std::vector<std::uint8_t>> member_;   ///< [task][node]
  /// Nodes with status enabled, maintained incrementally by refresh_node
  /// (dirty-set protocol, engine/search.hpp) — what expand() consumes.
  std::vector<IncrementalActiveSet> active_;        ///< [task]
  StampSet influencer_;                             ///< per node, current task
  bool influence_active_ = false;                   ///< §4.2 influence pruning usable
  bool early_stop_ok_ = false;                      ///< §4.2 source early-stop usable

  AdCache ad_cache_;                                ///< advertised() memo
  bool ad_cache_on_ = false;                        ///< opts_.ad_cache && cacheable

  // -- dynamic partial-order reduction (sleep + source sets) ---------------
  // docs/architecture.md "Partial-order reduction". kDfs mode runs the full
  // reduction (sleep sets, source-set lazy sibling emission with race-driven
  // backtracking, subtree summaries); frontier mode runs sleep sets only,
  // with masks stored per pending snapshot by the engine.
  enum class PorMode : std::uint8_t { kOff, kDfs, kFrontierSleep };
  PorMode por_mode_ = PorMode::kOff;
  std::size_t sleep_words_ = 0;               ///< ceil(nodes / 64)
  IndependenceOracle indep_;                  ///< footprint commutativity
  std::vector<std::uint8_t> is_source_node_;  ///< policy source membership
  const std::uint64_t* external_sleep_ = nullptr;  ///< frontier-attached mask
  std::size_t por_depth_ = 0;                 ///< applied moves on path (dfs)
  // Per-depth frames of the DFS path (each sleep_words_ wide):
  std::vector<std::uint64_t> sleep_stack_;    ///< inherited sleep sets
  std::vector<std::uint64_t> prior_stack_;    ///< explored earlier siblings
  std::vector<std::uint64_t> enabled_stack_;  ///< awake enabled nodes
  std::vector<std::uint64_t> emitted_stack_;  ///< node groups handed out
  std::vector<std::uint64_t> bt_stack_;       ///< pending backtrack requests
  std::vector<std::uint64_t> subtree_stack_;  ///< executed-node summaries
  std::vector<std::uint32_t> entry_stack_;    ///< visited entry per depth
  std::vector<std::size_t> phase_root_stack_; ///< por_depth_ at phase entry
  // Sleep-aware visited store — replaces the visited backend when POR is on
  // (the ⊆-rule needs the stored sleep mask; the DFS race replay needs the
  // subtree summary; terminal states are skipped under any sleep set):
  struct PorEntry {
    std::uint32_t flags = 0;
    std::uint32_t off = 0;  ///< index into por_pool_
  };
  static constexpr std::uint32_t kPorTerminal = 1;
  static constexpr std::uint32_t kPorNoEntry = 0xffffffffu;
  std::unordered_map<std::uint64_t, std::uint32_t> por_index_;
  std::vector<PorEntry> por_entries_;
  std::vector<std::uint64_t> por_pool_;  ///< per entry: sleep [+ summary]
  std::uint32_t por_cur_entry_ = kPorNoEntry;  ///< entry of the state being expanded
  std::vector<NodeId> por_nodes_scratch_;
  /// Difference-rule re-exploration restriction for the expand() that
  /// immediately follows por_mark_visited (empty = unrestricted).
  std::vector<std::uint64_t> por_mask_scratch_;
  std::vector<std::uint64_t> por_dep_scratch_;  ///< replay dep-row union
  [[nodiscard]] std::uint64_t stored_states() const {
    return por_mode_ == PorMode::kOff ? visited_->stored() : por_index_.size();
  }
  /// collect_updates(n) + emit its moves (or the naive-mode withdraw).
  void emit_node_moves(std::size_t task_idx, NodeId n,
                       std::vector<SearchMove>& moves);
  void por_prepare();
  void por_ensure_depth(std::size_t depth);
  [[nodiscard]] std::size_t por_stride() const {
    return por_mode_ == PorMode::kDfs ? 2 * sleep_words_ : sleep_words_;
  }
  [[nodiscard]] const std::uint64_t* por_active_sleep() const {
    return por_mode_ == PorMode::kFrontierSleep
               ? external_sleep_
               : &sleep_stack_[por_depth_ * sleep_words_];
  }
  bool por_mark_visited(std::size_t task_idx);
  void por_mark_terminal();
  Step por_emit(std::size_t task_idx, std::vector<SearchMove>& moves,
                std::vector<NodeId>& nodes, bool deterministic);
  void por_on_apply(std::size_t task_idx, const SearchMove& m);
  void por_on_undo(std::size_t task_idx, const SearchMove& m);
  void por_race(std::size_t task_idx, NodeId node, std::size_t below_depth);
  void por_race_mask(std::size_t task_idx, const std::uint64_t* mask);

  // Scratch arenas: per-call buffers hoisted out of the hot path so a
  // steady-state apply/undo/expand cycle performs zero heap allocations
  // (tests/test_hot_path_alloc.cpp pins this down).
  std::vector<RouteId> advs_scratch_;               ///< refresh_node merge inputs
  std::vector<std::pair<RouteId, NodeId>> cands_scratch_;  ///< collect_updates
  std::vector<RouteId> updates_scratch_;            ///< collect_updates output
  std::vector<NodeId> update_peers_scratch_;        ///< collect_updates output
  std::vector<NodeId> enabled_scratch_;             ///< expand enabled list
  std::vector<NodeId> filtered_scratch_;            ///< §4.1.3 component filter
  std::vector<NodeId> bfs_queue_;                   ///< influencer/component BFS
  StampSet in_comp_;                                ///< §4.1.3 component marks
  std::vector<TaskRib> ribs_scratch_;               ///< handle_converged view
  std::vector<NodeId> all_nodes_;                   ///< fallback source list
  mutable std::vector<std::uint64_t> dec_sigs_;     ///< cached dec_signatures()

  Trail trail_;
  ExploreResult result_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::uint64_t limit_check_counter_ = 0;
  std::uint64_t effective_max_states_ = 0;  ///< min non-zero of the two caps
  bool degraded_visited_ = false;           ///< exact→compact migration done

  /// Deterministic model-memory accounting for the budget check (the same
  /// structures run() reports, minus the end-of-run stack peak).
  [[nodiscard]] std::size_t current_model_bytes() const;
  /// Memory-pressure relief: migrate exact→hash-compact when permitted.
  /// Returns true when the migration brought usage back under the cap.
  bool try_degrade_visited();

  // policy source bookkeeping
  std::vector<NodeId> sources_storage_;
  std::span<const NodeId> sources_;
};

}  // namespace plankton
