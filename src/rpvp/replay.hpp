// Counterexample replay: re-executes a recorded trail (the paper's "trail
// file describing the execution path", §3.5) step by step, validating that
// each event is applicable, and returns the converged data plane it leads
// to. Lets users confirm a violation independently of the search that found
// it — the moral equivalent of replaying a SPIN trail.
#pragma once

#include <string>

#include "checker/trail.hpp"
#include "dataplane/fib.hpp"
#include "pec/pec.hpp"
#include "rpvp/explorer.hpp"

namespace plankton {

struct ReplayResult {
  bool ok = false;
  std::string error;
  FailureSet failures;
  DataPlane dp;
};

/// Replays `trail` for `pec` on `net`. `upstream` must supply the same
/// upstream outcomes the original run used (nullptr for independent PECs).
ReplayResult replay_trail(const Network& net, const Pec& pec, const Trail& trail,
                          const UpstreamProvider* upstream = nullptr);

}  // namespace plankton
