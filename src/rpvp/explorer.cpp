#include "rpvp/explorer.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string_view>
#include <unordered_map>

#include "checker/progress.hpp"
#include "sched/wire.hpp"
#include "protocols/bgp.hpp"
#include "protocols/ospf.hpp"

namespace plankton {

std::vector<PrefixTask> make_tasks(const Network& net, const Pec& pec) {
  std::vector<PrefixTask> tasks;
  for (std::size_t pi = 0; pi < pec.prefixes.size(); ++pi) {
    const PecPrefix& pp = pec.prefixes[pi];
    if (!pp.ospf_origins.empty()) {
      PrefixTask t;
      t.prefix_idx = static_cast<std::uint8_t>(pi);
      t.proto = Protocol::kOspf;
      t.process = std::make_unique<OspfProcess>(net, pp.prefix, pp.ospf_origins);
      tasks.push_back(std::move(t));
    }
    if (!pp.bgp_origins.empty()) {
      PrefixTask t;
      t.prefix_idx = static_cast<std::uint8_t>(pi);
      t.proto = Protocol::kEbgp;
      t.process = std::make_unique<BgpProcess>(net, pp.prefix, pp.bgp_origins);
      tasks.push_back(std::move(t));
    }
  }
  return tasks;
}

Explorer::Explorer(const Network& net, const Pec& pec, std::vector<PrefixTask> tasks,
                   const Policy& policy, ExploreOptions opts,
                   const UpstreamProvider* upstream)
    : net_(net),
      pec_(pec),
      tasks_(std::move(tasks)),
      policy_(policy),
      opts_(opts),
      upstream_provider_(upstream),
      visited_(make_visited_backend(opts.visited,
                                    VisitedConfig{opts.bloom_bits, 4})),
      engine_(make_search_engine(opts.engine(), opts.engine_config())) {
  ctx_.net = &net_;
  const std::size_t n = net.topo.node_count();
  const std::size_t t = tasks_.size();
  rib_.assign(t, std::vector<RouteId>(n, kNoRoute));
  status_.assign(t, std::vector<NodeStatus>(n));
  is_origin_.assign(t, std::vector<std::uint8_t>(n, 0));
  member_.assign(t, std::vector<std::uint8_t>(n, 0));
  codec_.reset(t);
  influencer_.reset(n);
  in_comp_.reset(n);
  active_.resize(t);
  for (auto& a : active_) a.reset(n);
  ad_cache_on_ = opts_.ad_cache;
  for (std::size_t i = 0; i < t; ++i) {
    // The incremental expand path replays members() order from a sorted
    // active set; the documented ascending-order contract must hold.
    assert(std::is_sorted(tasks_[i].process->members().begin(),
                          tasks_[i].process->members().end()));
    for (const NodeId o : tasks_[i].process->origins()) is_origin_[i][o] = 1;
    for (const NodeId m : tasks_[i].process->members()) member_[i][m] = 1;
    if (!tasks_[i].process->cacheable()) ad_cache_on_ = false;
  }
  ad_cache_.reset(t);
  sleep_words_ = (n + 63) / 64;
  // Scratch arenas: size for the worst case up front so the hot path never
  // grows them (peer lists are bounded by the node count).
  advs_scratch_.reserve(n);
  cands_scratch_.reserve(n);
  updates_scratch_.reserve(n);
  update_peers_scratch_.reserve(n);
  enabled_scratch_.reserve(n);
  filtered_scratch_.reserve(n);
  bfs_queue_.reserve(n);
  ribs_scratch_.reserve(t);
  sources_ = policy_.sources();

  // §4.2 applicability: the paper applies source early-stop and influence
  // pruning only when the policy names sources, no other PEC depends on this
  // one, and (for influence) a single prefix defines the PEC. We additionally
  // require protocol-only routing (no statics, one protocol per prefix) so a
  // source's committed control-plane path is guaranteed to coincide with the
  // hop-by-hop data-plane walk (see DESIGN.md).
  early_stop_ok_ = opts_.policy_pruning && !sources_.empty() &&
                   !(upstream_provider_ != nullptr &&
                     upstream_provider_->has_dependents());
  for (const auto& pp : pec_.prefixes) {
    if (!pp.static_routes.empty()) early_stop_ok_ = false;
    if (!pp.ospf_origins.empty() && !pp.bgp_origins.empty()) early_stop_ok_ = false;
  }
  influence_active_ = early_stop_ok_ && pec_.prefixes.size() == 1;
  is_source_node_.assign(n, 0);
  for (const NodeId s : sources_) is_source_node_[s] = 1;

  // POR applicability. Exhaustive engines only; the exact visited backend
  // only (the sleep-aware store is exact — pairing it with a lossy backend
  // would silently change the Fig. 9 ablation semantics). The §4.2 source
  // early-stop needs care: the sources' routes at the cut are
  // linearization-invariant under consistent-only execution, so verdicts
  // survive the reduction — but the cut state itself (non-source RIBs) is
  // order-dependent, so the cut-state *multiset* shrinks. POR therefore
  // turns itself off whenever something enumerates cut states: outcome
  // recording for dependent PECs, find-all duplicate-violation reporting,
  // or inconsistent execution (where even source routes churn).
  por_mode_ = PorMode::kOff;
  const bool cut_states_observed =
      early_stop_ok_ && (!opts_.consistent_only || opts_.record_outcomes ||
                         opts_.find_all_violations);
  if (opts_.por && opts_.visited == VisitedKind::kExact &&
      !cut_states_observed) {
    const SearchEngineKind ek = opts_.engine();
    if (ek == SearchEngineKind::kDfs) {
      por_mode_ = PorMode::kDfs;
    } else if (is_frontier(ek)) {
      por_mode_ = PorMode::kFrontierSleep;
    }
  }
}

ExploreResult Explorer::run() {
  const auto start = std::chrono::steady_clock::now();
  // The legacy time_limit and the budget deadline compose: earliest wins.
  for (const auto limit : {opts_.time_limit, opts_.budget.deadline}) {
    if (limit.count() <= 0) continue;
    const auto candidate = start + limit;
    if (!has_deadline_ || candidate < deadline_) deadline_ = candidate;
    has_deadline_ = true;
  }
  // Smaller non-zero state cap wins between the legacy knob and the budget.
  effective_max_states_ = opts_.max_states;
  if (opts_.budget.max_states != 0 &&
      (effective_max_states_ == 0 ||
       opts_.budget.max_states < effective_max_states_)) {
    effective_max_states_ = opts_.budget.max_states;
  }
  explore_failures(0);
  result_.stats.states_stored = stored_states();
  result_.stats.frontier_peak = engine_->frontier_peak();
  result_.stats.bytes_paths = ctx_.paths.bytes();
  result_.stats.bytes_routes = ctx_.routes.bytes();
  result_.stats.bytes_visited = visited_->bytes() + failure_sets_seen_.bytes() +
                                signatures_seen_.bytes();
  if (por_mode_ != PorMode::kOff) {
    result_.stats.bytes_visited +=
        por_pool_.capacity() * sizeof(std::uint64_t) +
        por_entries_.capacity() * sizeof(PorEntry) +
        por_index_.size() *
            (sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(void*)) +
        indep_.bytes();
  }
  std::size_t rib_bytes = 0;
  for (const auto& r : rib_) rib_bytes += r.capacity() * sizeof(RouteId);
  for (const auto& s : status_) rib_bytes += s.capacity() * sizeof(NodeStatus);
  result_.stats.bytes_stack_peak =
      rib_bytes + result_.stats.max_depth * sizeof(TrailEvent) * 2;
  result_.stats.bytes_ad_cache = ad_cache_.bytes();
  result_.stats.elapsed = std::chrono::steady_clock::now() - start;
  if (!visited_->exhaustive()) result_.exhaustive = false;
  return std::move(result_);
}

std::size_t Explorer::current_model_bytes() const {
  std::size_t b = ctx_.paths.bytes() + ctx_.routes.bytes() +
                  visited_->bytes() + failure_sets_seen_.bytes() +
                  signatures_seen_.bytes() + ad_cache_.bytes();
  if (por_mode_ != PorMode::kOff) {
    b += por_pool_.capacity() * sizeof(std::uint64_t) +
         por_entries_.capacity() * sizeof(PorEntry) +
         por_index_.size() *
             (sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(void*));
  }
  return b;
}

bool Explorer::try_degrade_visited() {
  // Migration needs the exact backend's full keys and must not race the POR
  // store (which replaces the visited backend entirely when POR is on).
  if (!opts_.budget.degrade_visited || degraded_visited_) return false;
  if (por_mode_ != PorMode::kOff) return false;
  auto compact = visited_->degrade_to_compact();
  if (!compact) return false;
  visited_ = std::move(compact);
  degraded_visited_ = true;
  result_.exhaustive = false;  // self-reported loss of exhaustiveness
  return current_model_bytes() <= opts_.budget.max_bytes;
}

bool Explorer::budget_exhausted() {
  if (result_.budget_tripped != BudgetKind::kNone) return true;
  // The state cap is checked on every call: trip points are a deterministic
  // function of the exploration order, so two runs with the same budget stop
  // at the same state (the budget-determinism tests pin this down).
  if (effective_max_states_ != 0 && stored_states() > effective_max_states_) {
    result_.state_limit_hit = true;
    result_.budget_tripped = BudgetKind::kStates;
    return true;
  }
  // Clock reads, memory accounting, and the liveness tick amortize over 256
  // model steps to stay off the hot path.
  if ((++limit_check_counter_ & 0xff) != 0) return false;
  ++result_.stats.budget_checks;
  progress_tick();
  if (has_deadline_ && std::chrono::steady_clock::now() > deadline_) {
    result_.timed_out = true;
    result_.budget_tripped = BudgetKind::kDeadline;
    return true;
  }
  if (opts_.budget.max_bytes != 0 &&
      current_model_bytes() > opts_.budget.max_bytes) {
    if (!try_degrade_visited()) {
      result_.memory_limit_hit = true;
      result_.budget_tripped = BudgetKind::kMemory;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Failure phase (§4.1.4, §4.3)
// ---------------------------------------------------------------------------

const std::vector<std::uint64_t>& Explorer::dec_signatures() const {
  // The signature is failure-independent (config, PEC, policy only), but it
  // used to be recomputed — with O(nodes × prefixes) std::find scans — at
  // every node of the failure tree. Compute once, reuse everywhere.
  if (!dec_sigs_.empty()) return dec_sigs_;
  std::vector<std::uint64_t> sig(net_.topo.node_count());
  for (NodeId n = 0; n < sig.size(); ++n) {
    const auto& dev = net_.device(n);
    std::uint64_t h = hash_mix(dev.ospf.enabled ? 2 : 1);
    if (dev.bgp) h = hash_combine(h, dev.bgp->asn + 1);
    for (std::size_t pi = 0; pi < pec_.prefixes.size(); ++pi) {
      const PecPrefix& pp = pec_.prefixes[pi];
      if (std::find(pp.ospf_origins.begin(), pp.ospf_origins.end(), n) !=
          pp.ospf_origins.end()) {
        h = hash_combine(h, 0x10 + pi * 4);
      }
      if (std::find(pp.bgp_origins.begin(), pp.bgp_origins.end(), n) !=
          pp.bgp_origins.end()) {
        h = hash_combine(h, 0x11 + pi * 4);
      }
      for (const auto& [dev_id, idx] : pp.static_routes) {
        if (dev_id != n) continue;
        const StaticRoute& sr = net_.device(n).statics[idx];
        h = hash_combine(h, 0x12 + pi * 4);
        std::uint64_t mode = 1;
        if (sr.via_neighbor != kNoNode) {
          mode = 2 + std::uint64_t{sr.via_neighbor};
        } else if (sr.via_ip) {
          mode = hash_mix(sr.via_ip->value());
        }
        h = hash_combine(h, mode);
      }
    }
    for (const NodeId s : sources_) {
      if (s == n) h = hash_combine(h, 0x50adull);
    }
    // Interesting nodes each get a unique color so DEC merging never
    // repositions them (§4.3).
    const auto interesting = policy_.interesting();
    for (std::size_t i = 0; i < interesting.size(); ++i) {
      if (interesting[i] == n) h = hash_combine(h, 0x9000 + i);
    }
    sig[n] = h;
  }
  dec_sigs_ = std::move(sig);
  return dec_sigs_;
}

std::vector<LinkId> Explorer::failure_candidates(LinkId next_link) const {
  if (opts_.lec_failures) {
    // (The LEC branch used to construct-and-discard a scratch vector for
    // the exhaustive path below; keep each mode's storage to itself.)
    const DecPartition dec =
        DecPartition::compute(net_.topo, dec_signatures(), failures_);
    return dec.lec_representatives(net_.topo, failures_);
  }
  std::vector<LinkId> out;
  for (LinkId l = next_link; l < net_.topo.link_count(); ++l) {
    if (!failures_.is_failed(l)) out.push_back(l);
  }
  return out;
}

Explorer::Flow Explorer::explore_failures(LinkId next_link) {
  if (budget_exhausted()) return Flow::kStop;
  // Different LEC pick orders can produce the same failure set; explore each
  // set once. (With ordered enumeration the hash is unique anyway.)
  if (!failure_sets_seen_.insert(hash_combine(failures_.hash(), 0xfee1))) {
    return Flow::kContinue;
  }
  if (check_failure_set() == Flow::kStop) return Flow::kStop;
  if (static_cast<int>(failures_.count()) >= opts_.max_failures) {
    return Flow::kContinue;
  }
  for (const LinkId l : failure_candidates(next_link)) {
    const FailureSet saved = failures_;
    failures_.fail(l);
    TrailEvent ev;
    ev.kind = TrailEvent::Kind::kFailLink;
    ev.link = l;
    trail_.events.push_back(ev);
    const Flow f = explore_failures(opts_.lec_failures ? 0 : l + 1);
    trail_.events.pop_back();
    failures_ = saved;
    if (f == Flow::kStop) return Flow::kStop;
  }
  return Flow::kContinue;
}

Explorer::Flow Explorer::check_failure_set() {
  ++result_.stats.failure_sets;
  std::vector<const UpstreamResolver*> ups;
  if (upstream_provider_ != nullptr) {
    ups = upstream_provider_->outcomes(failures_);
    if (ups.empty()) return Flow::kContinue;  // upstream has no converged state
  } else {
    ups.push_back(nullptr);
  }
  for (std::size_t i = 0; i < ups.size(); ++i) {
    ctx_.upstream = ups[i];
    for (auto& t : tasks_) t.process->prepare(failures_, ctx_);
    if (por_mode_ != PorMode::kOff) por_prepare();
    if (ad_cache_on_) {
      // One cache generation per (failure set, upstream outcome index):
      // prepare() changed the live-peer lists, and upstream-dependent
      // advertised() results (iBGP IGP costs, next-hop resolvability) must
      // never be reused across ctx_.upstream bindings.
      ad_cache_.invalidate();
      for (std::size_t t = 0; t < tasks_.size(); ++t) {
        ad_cache_.bind(t, *tasks_[t].process, net_.topo.node_count());
      }
    }
    codec_.begin_root(failures_.hash(),
                      ups[i] != nullptr ? ups[i]->outcome_hash() : 0);
    const bool note = ups.size() > 1;
    if (note) {
      TrailEvent ev;
      ev.kind = TrailEvent::Kind::kUpstreamOutcome;
      ev.phase = static_cast<std::uint32_t>(i);
      trail_.events.push_back(ev);
    }
    const Flow f = begin_phase(0);
    if (note) trail_.events.pop_back();
    if (f == Flow::kStop) return Flow::kStop;
  }
  return Flow::kContinue;
}

// ---------------------------------------------------------------------------
// Per-prefix RPVP phases
// ---------------------------------------------------------------------------

Explorer::Flow Explorer::begin_phase(std::size_t task_idx) {
  if (task_idx == tasks_.size()) return handle_converged();
  codec_.begin_phase(task_idx);
  auto& proc = *tasks_[task_idx].process;
  auto& rib = rib_[task_idx];
  std::fill(rib.begin(), rib.end(), kNoRoute);
  // Rebuild this phase's status and active set from scratch; from here on
  // refresh_node maintains both incrementally (dirty-set protocol).
  active_[task_idx].clear();
  for (auto& st : status_[task_idx]) st = NodeStatus{};
  for (const NodeId o : proc.origins()) {
    const RouteId r = proc.origin_route(o, ctx_);
    rib[o] = r;
    codec_.record(task_idx, o, kNoRoute, r);
  }
  for (const NodeId m : proc.members()) refresh_node(task_idx, m);
  if (por_mode_ == PorMode::kDfs) {
    // Fresh phase subtree: empty sleep set at the root, and races never
    // reach past the phase entry (the previous phases' moves are fixed
    // context for this phase, not reorderable events).
    por_ensure_depth(por_depth_);
    std::fill_n(sleep_stack_.begin() + por_depth_ * sleep_words_, sleep_words_,
                0);
    std::fill_n(subtree_stack_.begin() + por_depth_ * sleep_words_,
                sleep_words_, 0);
    entry_stack_[por_depth_] = kPorNoEntry;
    phase_root_stack_.push_back(por_depth_);
  }

  TrailEvent ev;
  ev.kind = TrailEvent::Kind::kBeginPrefix;
  ev.phase = static_cast<std::uint32_t>(task_idx);
  trail_.events.push_back(ev);
  const Flow f = engine_->search(*this, task_idx);
  trail_.events.pop_back();
  if (por_mode_ == PorMode::kDfs) phase_root_stack_.pop_back();
  return f;
}

Explorer::Flow Explorer::advance(std::size_t task_idx) {
  return begin_phase(task_idx + 1);
}

bool Explorer::mark_visited(std::size_t task_idx) {
  if (por_mode_ != PorMode::kOff) return por_mark_visited(task_idx);
  if (!visited_->insert(codec_.state_key(task_idx))) {
    ++result_.stats.revisits_skipped;
    return false;
  }
  result_.stats.max_depth =
      std::max<std::uint64_t>(result_.stats.max_depth, trail_.events.size());
  return true;
}

void Explorer::refresh_node(std::size_t task_idx, NodeId n) {
  auto& proc = *tasks_[task_idx].process;
  NodeStatus& st = status_[task_idx][n];
  const bool was_enabled = st.enabled;
  st = NodeStatus{};
  ++result_.stats.dirty_refreshes;
  if (is_origin_[task_idx][n] != 0 || member_[task_idx][n] == 0) {
    if (was_enabled) active_[task_idx].erase(n);
    return;
  }
  auto& rib = rib_[task_idx];
  const StateView view(rib);
  const RouteId cur = rib[n];
  const std::span<const NodeId> peers = proc.peers(n);
  if (proc.merge_equal_updates() && opts_.merge_updates) {
    advs_scratch_.clear();
    for (std::size_t i = 0; i < peers.size(); ++i) {
      advs_scratch_.push_back(adv(proc, task_idx, n, i, peers[i]));
    }
    const RouteId cand = proc.merge(n, advs_scratch_, ctx_);
    st.merge_candidate = cand;
    st.enabled = cand != cur;
  } else {
    const bool invalid = cur != kNoRoute && !proc.valid(n, cur, view, ctx_);
    const RouteId base = invalid ? kNoRoute : cur;
    bool can_update = false;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      const RouteId a = adv(proc, task_idx, n, i, peers[i]);
      if (a != kNoRoute && proc.compare(n, a, base, ctx_) > 0) {
        can_update = true;
        break;
      }
    }
    st.enabled = invalid || can_update;
  }
  st.conflict = st.enabled && cur != kNoRoute && opts_.consistent_only;
  if (st.enabled != was_enabled) {
    if (st.enabled) {
      active_[task_idx].insert(n);
    } else {
      active_[task_idx].erase(n);
    }
  }
}

void Explorer::refresh_around(std::size_t task_idx, NodeId n) {
  refresh_node(task_idx, n);
  for (const NodeId p : tasks_[task_idx].process->peers(n)) {
    refresh_node(task_idx, p);
  }
}

void Explorer::collect_updates(std::size_t task_idx, NodeId n) {
  updates_scratch_.clear();
  update_peers_scratch_.clear();
  auto& proc = *tasks_[task_idx].process;
  if (proc.merge_equal_updates() && opts_.merge_updates) {
    updates_scratch_.push_back(status_[task_idx][n].merge_candidate);
    update_peers_scratch_.push_back(kNoNode);
    return;
  }
  auto& rib = rib_[task_idx];
  const StateView view(rib);
  const RouteId cur = rib[n];
  const bool invalid = cur != kNoRoute && !proc.valid(n, cur, view, ctx_);
  const RouteId base = invalid ? kNoRoute : cur;
  const std::span<const NodeId> peers = proc.peers(n);
  cands_scratch_.clear();
  for (std::size_t i = 0; i < peers.size(); ++i) {
    const RouteId a = adv(proc, task_idx, n, i, peers[i]);
    if (a != kNoRoute && proc.compare(n, a, base, ctx_) > 0) {
      cands_scratch_.emplace_back(a, peers[i]);
    }
  }
  // U = best(...) — the maximal elements of the ranking (line 13 of Alg. 1).
  for (const auto& [r, p] : cands_scratch_) {
    bool dominated = false;
    for (const auto& [r2, p2] : cands_scratch_) {
      (void)p2;
      if (proc.compare(n, r2, r, ctx_) > 0) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      updates_scratch_.push_back(r);
      update_peers_scratch_.push_back(p);
    }
  }
}

bool Explorer::sources_all_committed(std::size_t task_idx) const {
  for (const NodeId s : sources_) {
    if (member_[task_idx][s] != 0 && rib_[task_idx][s] == kNoRoute) return false;
  }
  return true;
}

void Explorer::compute_influencers(std::size_t task_idx) {
  influencer_.begin();  // O(1) epoch bump, not an O(nodes) refill
  auto& proc = *tasks_[task_idx].process;
  auto& rib = rib_[task_idx];
  bfs_queue_.clear();
  for (const NodeId s : sources_) {
    if (member_[task_idx][s] != 0 && rib[s] == kNoRoute &&
        !influencer_.marked(s)) {
      influencer_.mark(s);
      bfs_queue_.push_back(s);
    }
  }
  // Advertisements reach an uncommitted source only through uncommitted
  // nodes (§4.2): committed nodes never re-advertise (§4.1.1).
  while (!bfs_queue_.empty()) {
    const NodeId n = bfs_queue_.back();
    bfs_queue_.pop_back();
    for (const NodeId p : proc.peers(n)) {
      if (influencer_.marked(p)) continue;
      if (rib[p] != kNoRoute) continue;  // committed: blocks propagation
      influencer_.mark(p);
      bfs_queue_.push_back(p);
    }
  }
}

bool Explorer::influence_allows(std::size_t task_idx, NodeId n) const {
  (void)task_idx;
  return !influence_active_ || influencer_.marked(n);
}

void Explorer::apply(std::size_t task_idx, SearchMove& m) {
  auto& rib = rib_[task_idx];
  m.prev = rib[m.node];
  rib[m.node] = m.route;
  codec_.record(task_idx, m.node, m.prev, m.route);
  TrailEvent ev;
  ev.kind = m.kind == SearchMove::Kind::kWithdraw ? TrailEvent::Kind::kWithdraw
                                                  : TrailEvent::Kind::kSelect;
  ev.phase = static_cast<std::uint32_t>(task_idx);
  ev.node = m.node;
  ev.peer = m.peer;
  ev.route = m.route;
  trail_.events.push_back(ev);
  refresh_around(task_idx, m.node);
  if (por_mode_ == PorMode::kDfs) por_on_apply(task_idx, m);
  ++result_.stats.states_explored;
}

void Explorer::undo(std::size_t task_idx, const SearchMove& m) {
  if (por_mode_ == PorMode::kDfs) por_on_undo(task_idx, m);
  auto& rib = rib_[task_idx];
  trail_.events.pop_back();
  rib[m.node] = m.prev;
  codec_.record(task_idx, m.node, m.route, m.prev);
  refresh_around(task_idx, m.node);
}

namespace {
/// Wire sentinel for Route.path == kNoPath in a snapshot route dictionary
/// (a real path length cannot reach 2^32 - 1 moves).
constexpr std::uint32_t kWireNoPath = 0xffffffffu;
}  // namespace

void Explorer::export_snapshot(StateSnapshot& s) {
  // RouteIds are slots in this process's interning tables (route.hpp): a
  // remote worker replaying the path would index its own, differently
  // populated tables. Ship the referenced route *contents* as a dictionary
  // and rewrite the moves to 1-based dictionary slots (0 stays ⊥).
  std::vector<RouteId> order;
  std::unordered_map<RouteId, std::uint32_t> slots;
  for (SearchMove& m : s.path) {
    m.prev = kNoRoute;  // apply() recomputes it; a donor-local id must not leak
    if (m.route == kNoRoute) continue;
    const auto [it, fresh] = slots.try_emplace(
        m.route, static_cast<std::uint32_t>(order.size()) + 1);
    if (fresh) order.push_back(m.route);
    m.route = it->second;
  }
  std::string dict;
  wire::put_int(dict, static_cast<std::uint32_t>(order.size()));
  for (const RouteId id : order) {
    const Route& r = ctx_.routes.get(id);
    if (r.path == kNoPath) {
      wire::put_int(dict, kWireNoPath);
    } else {
      const std::vector<NodeId> nodes = ctx_.paths.to_vector(r.path);
      wire::put_int(dict, static_cast<std::uint32_t>(nodes.size()));
      for (const NodeId n : nodes) wire::put_int(dict, n);
    }
    wire::put_int(dict, r.metric);
    wire::put_int(dict, r.local_pref);
    wire::put_int(dict, r.as_path_len);
    wire::put_int(dict, static_cast<std::uint8_t>(r.learned_ibgp ? 1 : 0));
    wire::put_int(dict, r.egress);
    wire::put_int(dict, r.communities);
    wire::put_int(dict, static_cast<std::uint32_t>(r.ecmp.size()));
    for (const NodeId n : r.ecmp) wire::put_int(dict, n);
  }
  s.route_dict = std::move(dict);
}

bool Explorer::import_snapshot(StateSnapshot& s) {
  // Inverse of export_snapshot: intern the dictionary's routes into the
  // local tables and rewrite the moves' dictionary slots to the resulting
  // ids. Re-importing content this process already holds is the identity
  // (interning is content-addressed), which is what the declined-export
  // path in the engine relies on. Corrupt dictionaries fail closed.
  std::string_view in = s.route_dict;
  const auto node_count = static_cast<std::uint32_t>(net_.topo.node_count());
  std::uint32_t count = 0;
  if (!wire::get_int(in, count) || !wire::fits(in, count, 4)) return false;
  std::vector<RouteId> local;
  local.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Route r;
    std::uint32_t plen = 0;
    if (!wire::get_int(in, plen)) return false;
    if (plen == kWireNoPath) {
      r.path = kNoPath;
    } else {
      if (!wire::fits(in, plen, sizeof(NodeId))) return false;
      // to_vector() order is next-hop first, origin last; cons cells chain
      // [head | rest], so rebuild from the origin end.
      std::vector<NodeId> nodes(plen, kNoNode);
      for (std::uint32_t j = 0; j < plen; ++j) {
        if (!wire::get_int(in, nodes[j]) || nodes[j] >= node_count) {
          return false;
        }
      }
      PathId p = kEmptyPath;
      for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
        p = ctx_.paths.cons(*it, p);
      }
      r.path = p;
    }
    std::uint8_t ibgp = 0;
    std::uint32_t ecmp = 0;
    if (!wire::get_int(in, r.metric) || !wire::get_int(in, r.local_pref) ||
        !wire::get_int(in, r.as_path_len) || !wire::get_int(in, ibgp) ||
        ibgp > 1 || !wire::get_int(in, r.egress) ||
        (r.egress != kNoNode && r.egress >= node_count) ||
        !wire::get_int(in, r.communities) || !wire::get_int(in, ecmp) ||
        !wire::fits(in, ecmp, sizeof(NodeId))) {
      return false;
    }
    r.learned_ibgp = ibgp != 0;
    r.ecmp.resize(ecmp);
    for (std::uint32_t j = 0; j < ecmp; ++j) {
      if (!wire::get_int(in, r.ecmp[j]) || r.ecmp[j] >= node_count) {
        return false;
      }
    }
    local.push_back(ctx_.routes.intern(std::move(r)));
  }
  if (!in.empty()) return false;  // trailing garbage
  for (SearchMove& m : s.path) {
    if (m.node >= node_count) return false;
    if (m.route == kNoRoute) continue;
    if (m.route > local.size()) return false;
    m.route = local[m.route - 1];
  }
  s.route_dict.clear();
  return true;
}

Explorer::Step Explorer::expand(std::size_t task_idx,
                                std::vector<SearchMove>& moves,
                                std::size_t move_budget) {
  auto& proc = *tasks_[task_idx].process;
  if (influence_active_) compute_influencers(task_idx);

  // The active set holds exactly the members whose status is enabled
  // (conflict implies enabled), maintained incrementally by refresh_node and
  // iterated in ascending id order — the same nodes, in the same order, the
  // O(members) rescan below visits. The rescan is kept as the reference
  // path (opt matrix, tests/test_exploration_equivalence.cpp).
  enabled_scratch_.clear();
  std::vector<NodeId>& enabled = enabled_scratch_;
  const auto classify = [&](NodeId n) -> bool {  // false = prune
    const NodeStatus& st = status_[task_idx][n];
    if (st.conflict) {
      // §4.1.1: a committed node wants to change — no converged state is
      // consistent with this execution. Frozen non-influencers are exempt:
      // their changes cannot affect the sources (§4.2).
      if (influence_allows(task_idx, n)) {
        ++result_.stats.pruned_inconsistent;
        return false;
      }
      return true;
    }
    if (!st.enabled) return true;
    if (!influence_allows(task_idx, n)) return true;
    enabled.push_back(n);
    return true;
  };
  if (opts_.incremental_expand) {
    for (const NodeId n : active_[task_idx].items()) {
      if (!classify(n)) {
        por_mark_terminal();  // inconsistency is sleep-set-independent
        return Step::kPruned;
      }
    }
  } else {
    for (const NodeId n : proc.members()) {
      if (!classify(n)) {
        por_mark_terminal();
        return Step::kPruned;
      }
    }
  }

  if (enabled.empty()) {
    por_mark_terminal();
    return Step::kConverged;  // converged (E = ∅)
  }

  // §4.2: once every source has decided, the policy outcome for this phase
  // is fixed; finish the execution here.
  if (early_stop_ok_ && sources_all_committed(task_idx)) {
    por_mark_terminal();
    return Step::kConverged;
  }

  auto push_moves = [&](NodeId n) {
    for (std::size_t i = 0; i < updates_scratch_.size(); ++i) {
      SearchMove m;
      m.kind = SearchMove::Kind::kSelect;
      m.node = n;
      m.peer = update_peers_scratch_[i];
      m.route = updates_scratch_[i];
      moves.push_back(m);
    }
  };

  // §4.1.2: deterministic nodes first.
  const bool det_allowed =
      opts_.deterministic_nodes && opts_.consistent_only &&
      (tasks_[task_idx].proto != Protocol::kEbgp || opts_.det_nodes_bgp);
  if (det_allowed) {
    bool tie_ok = false;
    const NodeId dn = proc.deterministic_node(enabled, StateView(rib_[task_idx]),
                                              ctx_, tie_ok);
    if (dn != kNoNode) {
      collect_updates(task_idx, dn);
      if (!updates_scratch_.empty()) {
        // Branch over this node's (possibly tied) updates only (Fig. 6,
        // steps 4-5).
        if (!tie_ok && updates_scratch_.size() == 1) {
          ++result_.stats.det_steps;
        } else {
          ++result_.stats.nondet_branches;
        }
        if (por_mode_ != PorMode::kOff) {
          // §4.1.2 composes with DPOR: the theorem licenses following dn
          // alone here, so the enabled/emitted sets both become {dn} and any
          // race backtrack request at this state resolves to nothing.
          por_nodes_scratch_.assign(1, dn);
          return por_emit(task_idx, moves, por_nodes_scratch_, true);
        }
        push_moves(dn);
        return Step::kBranch;
      }
    }
  }

  // §4.1.3: decision independence — branch only inside the uncommitted
  // component containing the lowest enabled node; other components commute.
  if (opts_.decision_independence && enabled.size() > 1) {
    auto& rib = rib_[task_idx];
    in_comp_.begin();
    bfs_queue_.clear();
    bfs_queue_.push_back(enabled.front());
    in_comp_.mark(enabled.front());
    while (!bfs_queue_.empty()) {
      const NodeId n = bfs_queue_.back();
      bfs_queue_.pop_back();
      for (const NodeId p : proc.peers(n)) {
        if (in_comp_.marked(p) || rib[p] != kNoRoute) continue;
        // Only information flow couples decisions: skip session edges over
        // which neither endpoint can ever send a new advertisement.
        if (!proc.can_transmit(n, p) && !proc.can_transmit(p, n)) continue;
        in_comp_.mark(p);
        bfs_queue_.push_back(p);
      }
    }
    filtered_scratch_.clear();
    for (const NodeId n : enabled) {
      if (in_comp_.marked(n)) filtered_scratch_.push_back(n);
    }
    if (!filtered_scratch_.empty()) enabled.swap(filtered_scratch_);
  }

  if (early_stop_ok_ && enabled.size() > 1) {
    // Cut-minimizing emission order: uncommitted policy sources first, so the
    // canonical (first-explored) linearizations reach the §4.2 source-commit
    // cut with as little irrelevant progress as possible; under POR, sleep
    // and source sets then prune most late-source orderings. Applied
    // unconditionally so the single-execution engine's leftmost path is the
    // same path every exhaustive engine (POR on or off) explores first.
    std::stable_partition(enabled.begin(), enabled.end(), [&](NodeId n) {
      return is_source_node_[n] != 0;
    });
  }

  if (por_mode_ != PorMode::kOff) {
    return por_emit(task_idx, moves, enabled, false);
  }

  bool counted_branch = false;
  for (const NodeId n : enabled) {
    if (moves.size() >= move_budget) break;  // engine won't take more
    collect_updates(task_idx, n);
    if (updates_scratch_.empty()) {
      // Invalid node with no usable advertisement: withdraw (naive mode).
      SearchMove m;
      m.kind = SearchMove::Kind::kWithdraw;
      m.node = n;
      m.route = kNoRoute;
      moves.push_back(m);
      continue;
    }
    if (!counted_branch && (enabled.size() > 1 || updates_scratch_.size() > 1)) {
      ++result_.stats.nondet_branches;
      counted_branch = true;
    }
    push_moves(n);
  }
  return Step::kBranch;
}

// ---------------------------------------------------------------------------
// Dynamic partial-order reduction (sleep + source sets)
// docs/architecture.md "Partial-order reduction"
// ---------------------------------------------------------------------------

void Explorer::por_prepare() {
  // Once per (failure set × upstream outcome): peers() — and with it the
  // move footprints — depend on which sessions the failure set leaves up.
  const auto t0 = std::chrono::steady_clock::now();
  indep_.reset(tasks_.size(), net_.topo.node_count());
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    const auto& proc = *tasks_[t].process;
    if (!proc.cacheable()) {
      // Conservative fallback: a process with impure advertisement (hidden
      // route-map state) has no reliable footprint — make every pair of its
      // moves conflict, so sleep sets never populate for this task and its
      // exploration is unchanged.
      indep_.set_all_dependent(t);
      continue;
    }
    for (const NodeId m : proc.members()) {
      indep_.add_transition(t, m, proc.peers(m));
    }
  }
  result_.stats.por_footprint_time +=
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0);
}

void Explorer::por_ensure_depth(std::size_t depth) {
  const std::size_t need = (depth + 1) * sleep_words_;
  if (sleep_stack_.size() < need) {
    sleep_stack_.resize(need, 0);
    prior_stack_.resize(need, 0);
    enabled_stack_.resize(need, 0);
    emitted_stack_.resize(need, 0);
    bt_stack_.resize(need, 0);
    subtree_stack_.resize(need, 0);
  }
  if (entry_stack_.size() <= depth) {
    entry_stack_.resize(depth + 1, kPorNoEntry);
  }
}

bool Explorer::por_mark_visited(std::size_t task_idx) {
  const std::size_t w = sleep_words_;
  const bool dfs = por_mode_ == PorMode::kDfs;
  const std::uint64_t* cur = por_active_sleep();
  // The re-exploration restriction (difference rule below) applies only to
  // the expand() that immediately follows; every visit starts unrestricted.
  por_mask_scratch_.clear();
  const auto [it, fresh] = por_index_.try_emplace(
      codec_.state_key(task_idx), static_cast<std::uint32_t>(0));
  if (fresh) {
    const auto idx = static_cast<std::uint32_t>(por_entries_.size());
    it->second = idx;
    PorEntry e;
    e.off = static_cast<std::uint32_t>(por_pool_.size());
    por_entries_.push_back(e);
    por_pool_.insert(por_pool_.end(), cur, cur + w);  // the arrival sleep set
    if (dfs) por_pool_.insert(por_pool_.end(), w, 0);  // subtree summary
    por_cur_entry_ = idx;
    if (dfs) entry_stack_[por_depth_] = idx;
    result_.stats.max_depth =
        std::max<std::uint64_t>(result_.stats.max_depth, trail_.events.size());
    return true;
  }
  const std::uint32_t idx = it->second;
  PorEntry& e = por_entries_[idx];
  if ((e.flags & kPorTerminal) != 0) {
    // Converged or inconsistency-pruned: the classification is independent
    // of the sleep set, so the revisit is always redundant.
    ++result_.stats.revisits_skipped;
    return false;
  }
  std::uint64_t* stored = &por_pool_[e.off];
  bool subset = true;
  for (std::size_t i = 0; i < w; ++i) {
    if ((stored[i] & ~cur[i]) != 0) {
      subset = false;
      break;
    }
  }
  if (dfs) {
    // Whether we skip or partially re-explore, the subtree explored from
    // this state on earlier visits stays part of the current path's
    // coverage: replay its executed-node summary against the path for
    // source-set race detection, and seed the live summary with it so
    // ancestors inherit it (por_on_undo).
    const std::uint64_t* sum = stored + w;
    std::copy(sum, sum + w, subtree_stack_.begin() + por_depth_ * w);
    por_race_mask(task_idx, sum);
  }
  if (subset) {
    // stored ⊆ current: every move awake now was awake then — the earlier
    // exploration covers this visit entirely.
    ++result_.stats.revisits_skipped;
    return false;
  }
  // Godefroid's difference rule (state caching + sleep sets): re-explore
  // only the moves that were asleep on the stored visit but are awake now
  // (stored ∖ current) — everything else is covered by the earlier visit.
  // Children keep the plain arrival sleep set; the restriction is an
  // emission filter, not a sleep set. The stored mask shrinks to the
  // intersection, strictly, which bounds the number of re-visits.
  por_mask_scratch_.resize(w);
  for (std::size_t i = 0; i < w; ++i) {
    por_mask_scratch_[i] = stored[i] & ~cur[i];
    stored[i] &= cur[i];
  }
  por_cur_entry_ = idx;
  if (dfs) entry_stack_[por_depth_] = idx;
  result_.stats.max_depth =
      std::max<std::uint64_t>(result_.stats.max_depth, trail_.events.size());
  return true;
}

void Explorer::por_mark_terminal() {
  if (por_mode_ == PorMode::kOff || por_cur_entry_ == kPorNoEntry) return;
  por_entries_[por_cur_entry_].flags |= kPorTerminal;
}

void Explorer::emit_node_moves(std::size_t task_idx, NodeId n,
                               std::vector<SearchMove>& moves) {
  collect_updates(task_idx, n);
  if (updates_scratch_.empty()) {
    // Invalid node with no usable advertisement: withdraw (naive mode).
    SearchMove m;
    m.kind = SearchMove::Kind::kWithdraw;
    m.node = n;
    m.route = kNoRoute;
    moves.push_back(m);
    return;
  }
  for (std::size_t i = 0; i < updates_scratch_.size(); ++i) {
    SearchMove m;
    m.kind = SearchMove::Kind::kSelect;
    m.node = n;
    m.peer = update_peers_scratch_[i];
    m.route = updates_scratch_[i];
    moves.push_back(m);
  }
}

Explorer::Step Explorer::por_emit(std::size_t task_idx,
                                  std::vector<SearchMove>& moves,
                                  std::vector<NodeId>& nodes,
                                  bool deterministic) {
  const std::size_t w = sleep_words_;
  const bool dfs = por_mode_ == PorMode::kDfs;
  const std::uint64_t* sleep = por_active_sleep();
  std::size_t kept = 0;
  for (const NodeId n : nodes) {
    if (mask_test(sleep, n)) continue;  // covered by an earlier sibling
    if (!por_mask_scratch_.empty() &&
        !mask_test(por_mask_scratch_.data(), n)) {
      continue;  // difference rule: covered by the stored visit
    }
    nodes[kept++] = n;
  }
  result_.stats.por_pruned += nodes.size() - kept;
  nodes.resize(kept);
  por_mask_scratch_.clear();
  if (kept == 0) return Step::kPruned;  // not terminal: context-dependent
  if (!dfs) {
    for (const NodeId n : nodes) emit_node_moves(task_idx, n, moves);
    return Step::kBranch;
  }
  por_ensure_depth(por_depth_);
  std::uint64_t* en = &enabled_stack_[por_depth_ * w];
  std::uint64_t* em = &emitted_stack_[por_depth_ * w];
  std::fill_n(en, w, 0);
  std::fill_n(em, w, 0);
  std::fill_n(bt_stack_.begin() + por_depth_ * w, w, 0);
  std::fill_n(prior_stack_.begin() + por_depth_ * w, w, 0);
  for (const NodeId n : nodes) mask_set(en, n);
  // Source-set lazy emission: hand the engine only the first awake node's
  // moves. Races observed inside its subtree request exactly the siblings
  // whose orderings that subtree does not cover (por_race → por_extend);
  // everything never requested is never explored. Deterministic states are
  // the §4.1.2 exception: dn alone is the theorem's choice, and with
  // enabled = emitted = {dn} race requests here resolve to nothing.
  const std::size_t emit_n = deterministic ? kept : 1;
  if (!deterministic && kept > 1) ++result_.stats.por_source_sets;
  for (std::size_t i = 0; i < emit_n; ++i) {
    emit_node_moves(task_idx, nodes[i], moves);
    mask_set(em, nodes[i]);
  }
  // Difference-rule re-visit: the earlier visit's subtree (seeded into this
  // depth's summary by por_mark_visited) must also file its requests against
  // the enabled frame that now exists — the sweep in por_mark_visited ran
  // before it was set.
  por_race_mask(task_idx, &subtree_stack_[por_depth_ * w]);
  if (!deterministic && (kept > 1 || moves.size() > 1)) {
    ++result_.stats.nondet_branches;
  }
  return Step::kBranch;
}

void Explorer::por_on_apply(std::size_t task_idx, const SearchMove& m) {
  const std::size_t w = sleep_words_;
  const std::size_t d = por_depth_;
  por_ensure_depth(d + 1);
  // Classic sleep-set inheritance: the child sleeps everything the parent
  // slept plus the siblings explored before this move, minus whatever this
  // move conflicts with. Only *previously explored* siblings go in (prior),
  // never later ones — mutual sleeping would drop both orders of an
  // independent pair.
  sleep_child(&sleep_stack_[(d + 1) * w], &sleep_stack_[d * w],
              &prior_stack_[d * w], indep_.row(task_idx, m.node), w);
  mask_set(&prior_stack_[d * w], m.node);
  por_race(task_idx, m.node, d);
  ++por_depth_;
  // Fresh frames for the child state — por_on_undo and por_race read them
  // even when the child is skipped as visited and never expands.
  std::fill_n(subtree_stack_.begin() + (d + 1) * w, w, 0);
  std::fill_n(enabled_stack_.begin() + (d + 1) * w, w, 0);
  std::fill_n(emitted_stack_.begin() + (d + 1) * w, w, 0);
  std::fill_n(bt_stack_.begin() + (d + 1) * w, w, 0);
  entry_stack_[d + 1] = kPorNoEntry;
}

void Explorer::por_on_undo(std::size_t task_idx, const SearchMove& m) {
  (void)task_idx;
  const std::size_t w = sleep_words_;
  const std::size_t child = por_depth_;
  const std::size_t d = child - 1;
  // The child's expansion is complete: persist what its subtree executed so
  // future cache hits on it can replay the races (merge, never overwrite —
  // difference-rule re-visits only add executions).
  const std::uint32_t e = entry_stack_[child];
  if (e != kPorNoEntry) {
    std::uint64_t* sum = &por_pool_[por_entries_[e].off + w];
    for (std::size_t i = 0; i < w; ++i) sum[i] |= subtree_stack_[child * w + i];
  }
  // Awake siblings no race ever demanded are source-set savings.
  for (std::size_t i = 0; i < w; ++i) {
    result_.stats.por_pruned += static_cast<std::uint64_t>(std::popcount(
        enabled_stack_[child * w + i] & ~emitted_stack_[child * w + i]));
  }
  for (std::size_t i = 0; i < w; ++i) {
    subtree_stack_[d * w + i] |= subtree_stack_[child * w + i];
  }
  mask_set(&subtree_stack_[d * w], m.node);
  --por_depth_;
}

void Explorer::por_race(std::size_t task_idx, NodeId node,
                        std::size_t below_depth) {
  // Every awake enabled-but-unexplored sibling of an ancestor state (this
  // phase only — earlier phases are fixed context, not reorderable events)
  // that conflicts with `node` must eventually be explored from that
  // ancestor: only an executed conflicting event can disable it, and a
  // maximal execution cannot end with it still enabled, so a sibling whose
  // first-move class would otherwise be lost is guaranteed to file this
  // request before its class disappears. dep is reflexive, so this subsumes
  // the classic racing-node request (`node` re-requests itself wherever it
  // is an unexplored enabled choice).
  // Empty outside run() (tests drive the SearchModel interface directly):
  // sweep from depth 0, which can only over-request backtracks, never lose.
  const std::size_t root = phase_root_stack_.empty() ? 0 : phase_root_stack_.back();
  const std::uint64_t* dep = indep_.row(task_idx, node);
  const std::size_t w = sleep_words_;
  for (std::size_t i = root; i <= below_depth; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      bt_stack_[i * w + j] |= enabled_stack_[i * w + j] &
                              ~emitted_stack_[i * w + j] & dep[j];
    }
  }
}

void Explorer::por_race_mask(std::size_t task_idx, const std::uint64_t* mask) {
  // Replaying a cached subtree's executions: one ancestor sweep with the
  // union of their dependence rows instead of one sweep per node.
  const std::size_t w = sleep_words_;
  por_dep_scratch_.assign(w, 0);
  bool any = false;
  for (std::size_t wi = 0; wi < w; ++wi) {
    std::uint64_t bits = mask[wi];
    while (bits != 0) {
      const auto n = static_cast<NodeId>(
          wi * 64 + static_cast<std::size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
      const std::uint64_t* dep = indep_.row(task_idx, n);
      for (std::size_t j = 0; j < w; ++j) por_dep_scratch_[j] |= dep[j];
      any = true;
    }
  }
  if (!any) return;
  const std::size_t root = phase_root_stack_.empty() ? 0 : phase_root_stack_.back();
  for (std::size_t i = root; i <= por_depth_; ++i) {
    for (std::size_t j = 0; j < w; ++j) {
      bt_stack_[i * w + j] |= enabled_stack_[i * w + j] &
                              ~emitted_stack_[i * w + j] & por_dep_scratch_[j];
    }
  }
}

// -- SearchModel POR hooks ---------------------------------------------------

std::size_t Explorer::por_words() const {
  return por_mode_ == PorMode::kFrontierSleep ? sleep_words_ : 0;
}

void Explorer::por_attach_sleep(const std::uint64_t* sleep) {
  external_sleep_ = sleep;
}

void Explorer::por_child_sleep(std::size_t task_idx, const SearchMove& m,
                               const std::uint64_t* prior,
                               std::uint64_t* out) {
  sleep_child(out, por_active_sleep(), prior, indep_.row(task_idx, m.node),
              sleep_words_);
}

void Explorer::por_extend(std::size_t task_idx,
                          std::vector<SearchMove>& moves) {
  if (por_mode_ != PorMode::kDfs) return;
  const std::size_t w = sleep_words_;
  const std::size_t d = por_depth_;
  std::uint64_t* bt = &bt_stack_[d * w];
  std::uint64_t* em = &emitted_stack_[d * w];
  const std::uint64_t* en = &enabled_stack_[d * w];
  for (std::size_t i = 0; i < w; ++i) {
    std::uint64_t take = bt[i] & en[i] & ~em[i];
    bt[i] = 0;
    em[i] |= take;
    while (take != 0) {
      const auto n = static_cast<NodeId>(i * 64 +
                                         static_cast<std::size_t>(
                                             std::countr_zero(take)));
      take &= take - 1;
      emit_node_moves(task_idx, n, moves);
    }
  }
}

Explorer::Flow Explorer::handle_converged() {
  ++result_.stats.converged_states;
  ribs_scratch_.clear();
  std::vector<TaskRib>& ribs = ribs_scratch_;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    ribs.push_back(TaskRib{tasks_[t].prefix_idx, tasks_[t].proto, rib_[t]});
  }
  const DataPlane dp = build_dataplane(net_, pec_, failures_, ribs, ctx_);

  // Outcome recording must happen before equivalence suppression: dependent
  // PECs need every converged state, while suppression only elides redundant
  // *policy checks* (§3.5).
  if (opts_.record_outcomes) {
    // (Duplicate converged data planes reached via different branches are
    // stored once; the outcome hash below is the dedup key.)
    PecOutcome out;
    out.failures = failures_;
    out.upstream_hash =
        ctx_.upstream != nullptr ? ctx_.upstream->outcome_hash() : 0;
    out.dp = dp;
    out.igp_cost.assign(net_.topo.node_count(), kInfiniteCost);
    for (NodeId n = 0; n < net_.topo.node_count(); ++n) {
      for (std::size_t t = 0; t < tasks_.size(); ++t) {
        if (tasks_[t].proto != Protocol::kOspf) continue;
        const RouteId r = rib_[t][n];
        if (r == kNoRoute) continue;
        out.igp_cost[n] = ctx_.routes.get(r).metric;
        break;  // tasks are in LPM (most-specific-first) prefix order
      }
      if (dp.at(n).kind == FwdKind::kLocal) out.igp_cost[n] = 0;
    }
    std::uint64_t h = hash_combine(out.failures.hash(), out.upstream_hash);
    h = hash_combine(h, hash_span<std::uint32_t>(out.igp_cost));
    for (const auto& e : dp.entries) {
      h = hash_combine(h, static_cast<std::uint64_t>(e.kind));
      h = hash_span<NodeId>(e.nexthops, h);
    }
    out.hash = h;
    if (outcomes_seen_.insert(h)) result_.outcomes.push_back(std::move(out));
  }

  if (opts_.suppress_equivalent && policy_.supports_equivalence()) {
    std::span<const NodeId> srcs = sources_;
    if (srcs.empty()) {
      if (all_nodes_.empty()) {
        all_nodes_.resize(net_.topo.node_count());
        for (NodeId n = 0; n < all_nodes_.size(); ++n) all_nodes_[n] = n;
      }
      srcs = all_nodes_;
    }
    const std::uint64_t sig = policy_signature(dp, srcs, policy_.interesting(),
                                               net_.topo.node_count());
    if (!signatures_seen_.insert(sig)) {
      ++result_.stats.suppressed_checks;
      return Flow::kContinue;
    }
  }

  ++result_.stats.policy_checks;
  const ConvergedView view{net_, pec_, failures_, dp, ribs, ctx_};
  std::string why;
  if (!policy_.check(view, why)) {
    result_.holds = false;
    Violation v;
    v.failures = failures_;
    v.trail = trail_;
    v.trail_text = trail_.describe(net_.topo, ctx_.routes, ctx_.paths);
    v.message = std::move(why);
    result_.violations.push_back(std::move(v));
    if (!opts_.find_all_violations) return Flow::kStop;
  }
  return Flow::kContinue;
}

}  // namespace plankton
