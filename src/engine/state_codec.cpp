#include "engine/state_codec.hpp"

namespace plankton {

void StateCodec::reset(std::size_t phases) {
  rib_hash_.assign(phases, 0);
  ctx_hash_.assign(phases + 1, 0);
}

void StateCodec::begin_root(std::uint64_t failures_hash,
                            std::uint64_t upstream_hash) {
  ctx_hash_[0] =
      hash_combine(hash_combine(failures_hash, 0x9c0ffee), upstream_hash);
}

void StateCodec::begin_phase(std::size_t t) {
  if (t > 0) {
    ctx_hash_[t] =
        hash_combine(ctx_hash_[t - 1], hash_combine(rib_hash_[t - 1], 0xbeef));
  }
  rib_hash_[t] = 0;
}

}  // namespace plankton
