#include "engine/visited.hpp"

#include <bit>

namespace plankton {

BloomFilter::BloomFilter(std::size_t bits, int hashes) : hashes_(hashes) {
  const std::size_t b = std::bit_ceil(bits < 1024 ? std::size_t{1024} : bits);
  words_.assign(b / 64, 0);
  mask_ = b - 1;
}

bool BloomFilter::insert(std::uint64_t h) {
  const std::uint64_t h1 = hash_mix(h);
  const std::uint64_t h2 = hash_mix(h1) | 1;  // odd stride
  bool fresh = false;
  std::uint64_t pos = h1;
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = pos & mask_;
    const std::uint64_t word_mask = std::uint64_t{1} << (bit & 63);
    if ((words_[bit >> 6] & word_mask) == 0) {
      fresh = true;
      words_[bit >> 6] |= word_mask;
    }
    pos += h2;
  }
  if (fresh) ++inserted_;
  return fresh;
}

void BloomFilter::clear() {
  words_.assign(words_.size(), 0);
  inserted_ = 0;
}

const char* to_string(VisitedKind kind) {
  switch (kind) {
    case VisitedKind::kExact: return "exact";
    case VisitedKind::kHashCompact: return "hash-compact";
    case VisitedKind::kBitstate: return "bitstate";
  }
  return "?";
}

namespace {

class HashCompactVisited;

class ExactVisited final : public VisitedBackend {
 public:
  bool insert(std::uint64_t key) override { return set_.insert(key); }
  [[nodiscard]] std::size_t stored() const override { return set_.size(); }
  [[nodiscard]] std::size_t bytes() const override { return set_.bytes(); }
  void clear() override { set_.clear(); }
  [[nodiscard]] VisitedKind kind() const override { return VisitedKind::kExact; }
  [[nodiscard]] bool exhaustive() const override { return true; }
  [[nodiscard]] std::unique_ptr<VisitedBackend> degrade_to_compact()
      const override;

 private:
  VisitedSet set_;
};

/// SPIN-style hash compaction: keys are folded to 32 bits before storage.
/// Two distinct states sharing a compacted key make the second look visited,
/// so coverage is probabilistic — but the table is half the size of kExact.
class HashCompactVisited final : public VisitedBackend {
 public:
  bool insert(std::uint64_t key) override {
    std::uint32_t c =
        static_cast<std::uint32_t>(hash_mix(key) >> 32);  // compacted value
    if (c == 0) c = 0x9e3779b9u;                          // 0 marks "empty"
    return set_.insert(c);
  }

  [[nodiscard]] std::size_t stored() const override { return set_.size(); }
  [[nodiscard]] std::size_t bytes() const override { return set_.bytes(); }
  void clear() override { set_.clear(); }
  [[nodiscard]] VisitedKind kind() const override {
    return VisitedKind::kHashCompact;
  }
  [[nodiscard]] bool exhaustive() const override { return false; }

 private:
  detail::OpenAddressSet<std::uint32_t> set_;
};

class BitstateVisited final : public VisitedBackend {
 public:
  explicit BitstateVisited(const VisitedConfig& config)
      : bloom_(config.bloom_bits, config.bloom_hashes) {}

  bool insert(std::uint64_t key) override { return bloom_.insert(key); }
  [[nodiscard]] std::size_t stored() const override {
    return static_cast<std::size_t>(bloom_.approx_states());
  }
  [[nodiscard]] std::size_t bytes() const override { return bloom_.bytes(); }
  void clear() override { bloom_.clear(); }
  [[nodiscard]] VisitedKind kind() const override {
    return VisitedKind::kBitstate;
  }
  [[nodiscard]] bool exhaustive() const override { return false; }

 private:
  BloomFilter bloom_;
};

std::unique_ptr<VisitedBackend> ExactVisited::degrade_to_compact() const {
  auto compact = std::make_unique<HashCompactVisited>();
  set_.for_each([&compact](std::uint64_t key) { compact->insert(key); });
  return compact;
}

}  // namespace

std::unique_ptr<VisitedBackend> make_visited_backend(VisitedKind kind,
                                                     const VisitedConfig& config) {
  switch (kind) {
    case VisitedKind::kExact: return std::make_unique<ExactVisited>();
    case VisitedKind::kHashCompact:
      return std::make_unique<HashCompactVisited>();
    case VisitedKind::kBitstate:
      return std::make_unique<BitstateVisited>(config);
  }
  return std::make_unique<ExactVisited>();
}

}  // namespace plankton
