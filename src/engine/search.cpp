#include "engine/search.hpp"

#include <algorithm>
#include <cstring>

#include "engine/frontier.hpp"
#include "engine/independence.hpp"

namespace plankton {
namespace {

/// Depth-first search over the model's move tree. `branch_limit` caps how
/// many moves are taken per state: unlimited for the exhaustive check, one
/// for single-execution simulation.
class DfsEngine : public SearchEngine {
 public:
  explicit DfsEngine(std::size_t branch_limit = SIZE_MAX)
      : branch_limit_(branch_limit) {}

  [[nodiscard]] const char* name() const override { return "dfs"; }

  SearchFlow search(SearchModel& model, std::size_t phase) override {
    if (model.budget_exhausted()) return SearchFlow::kStop;
    if (!model.mark_visited(phase)) return SearchFlow::kContinue;
    // Reuse one move buffer per recursion level instead of allocating per
    // state. The buffer is moved out of the pool while in use, so nested
    // search() calls (recursion below, or advance() re-entering the engine
    // for the next phase) can never alias it; they are given deeper slots.
    if (pool_.size() <= depth_) pool_.emplace_back();
    std::vector<SearchMove> moves = std::move(pool_[depth_]);
    moves.clear();
    ++depth_;
    SearchFlow flow = SearchFlow::kContinue;
    switch (model.expand(phase, moves, branch_limit_)) {
      case SearchModel::Step::kPruned:
        break;
      case SearchModel::Step::kConverged:
        flow = model.advance(phase);
        break;
      case SearchModel::Step::kBranch: {
        // moves.size() is re-read every iteration: por_extend() may append
        // source-set backtrack siblings that races in the subtree just
        // explored proved necessary (and may reallocate the vector, so the
        // element reference is taken fresh per iteration).
        for (std::size_t i = 0; i < moves.size() && i < branch_limit_; ++i) {
          model.apply(phase, moves[i]);
          flow = search(model, phase);
          model.undo(phase, moves[i]);
          if (flow == SearchFlow::kStop) break;
          model.por_extend(phase, moves);
        }
        break;
      }
    }
    --depth_;
    pool_[depth_] = std::move(moves);
    return flow;
  }

 private:
  std::size_t branch_limit_;
  std::size_t depth_ = 0;
  std::vector<std::vector<SearchMove>> pool_;
};

class SingleExecutionEngine final : public DfsEngine {
 public:
  SingleExecutionEngine() : DfsEngine(1) {}
  [[nodiscard]] const char* name() const override { return "single-execution"; }
};

/// Frontier-driven exhaustive search (engine/frontier.hpp): keeps pending
/// states as restorable snapshots and expands them in the order the Frontier
/// dictates — FIFO (BFS), priority over StateCodec keys, or seeded random
/// with periodic restarts. Physically the model still moves one apply/undo
/// at a time: switching snapshots undoes the current path to the lowest
/// common ancestor and replays the target suffix, so the model's incremental
/// dirty-set bookkeeping stays valid.
class FrontierEngine final : public SearchEngine {
 public:
  FrontierEngine(FrontierOrder order, const SearchEngineConfig& config)
      : order_(order), config_(config) {}

  [[nodiscard]] const char* name() const override {
    switch (order_) {
      case FrontierOrder::kFifo: return "bfs";
      case FrontierOrder::kPriority: return "priority";
      case FrontierOrder::kRandomRestart: return "random-restart";
    }
    return "frontier";
  }

  [[nodiscard]] std::uint64_t frontier_peak() const override { return peak_; }

  SearchFlow search(SearchModel& model, std::size_t phase) override {
    // advance() re-enters this engine for the next phase while this
    // invocation is parked at a converged snapshot, so search state lives in
    // a per-recursion-depth pool (reset-and-reuse, like DfsEngine::pool_ —
    // no per-root allocation churn across the failure tree). unique_ptr
    // slots keep PhaseState addresses stable while nested calls grow the
    // pool. The seed folds in an invocation counter so each phase entry
    // gets a distinct (but reproducible) pop order.
    if (pool_.size() <= depth_) {
      pool_.push_back(std::make_unique<PhaseState>(
          order_, config_.restart_interval, config_.restart_policy));
    }
    PhaseState& ps = *pool_[depth_];
    ++depth_;
    // Export/seed apply only to the outermost invocation: nested phase
    // searches sit below a parked converged prefix of an outer frontier
    // engine, which a snapshot (a path from *this phase's* root) cannot
    // describe to a remote worker.
    const bool outermost = depth_ == 1;
    ps.frontier.reset(config_.seed + 0x9e3779b97f4a7c15ull * ++invocations_);
    ps.moves.clear();
    ps.backlog.clear();
    Frontier& frontier = ps.frontier;
    std::vector<SearchMove>& moves = ps.moves;
    std::vector<StateSnapshot>& backlog = ps.backlog;
    // Sleep-set DPOR (when the model opts in): every pending snapshot keeps
    // the sleep mask it was pushed with; the model gets it re-attached on
    // pop and computes each child's mask at push time, so the reduction
    // survives the engine's arbitrary pop order and split()/inject() round
    // trips (spawned subtasks inherit their masks with the snapshot).
    const std::size_t pw = model.por_words();
    if (pw != 0) {
      frontier.enable_sleep(pw);
      ps.cur_sleep.assign(pw, 0);
      ps.prior.assign(pw, 0);
    }
    std::int32_t cur = Frontier::kRoot;
    std::uint64_t pops = 0;
    SearchFlow flow = SearchFlow::kContinue;
    if (outermost && !config_.seed_frontier.empty() && !seeded_) {
      // Receiving side of a work export: start from the donated snapshots,
      // not the phase root — the donor retains everything it did not ship.
      // Donated snapshots arrive in portable form; a failed import means
      // the dictionary does not describe this model's world and replaying
      // the path would corrupt it — abort the run (the coordinator keeps
      // its copy of the snapshots and reassigns the subtask).
      seeded_ = true;
      for (StateSnapshot& s : config_.seed_frontier) {
        if (!model.import_snapshot(s)) {
          throw std::runtime_error("seed snapshot import failed");
        }
        frontier.inject(s);
      }
    } else {
      frontier.push_root();
    }
    while (flow == SearchFlow::kContinue) {
      if (frontier.empty()) {
        if (backlog.empty()) break;
        // Deferred split-off work comes back once the local frontier drains
        // (the single-threaded image of steal-and-return work sharing).
        for (const StateSnapshot& s : backlog) frontier.inject(s);
        backlog.clear();
        continue;
      }
      if (model.budget_exhausted()) {
        flow = SearchFlow::kStop;
        break;
      }
      const std::int32_t id = frontier.pop();
      ++pops;
      cur = goto_state(model, phase, frontier, cur, id);
      if (pw != 0) {
        if (id == Frontier::kRoot) {
          std::fill(ps.cur_sleep.begin(), ps.cur_sleep.end(), 0);
        } else {
          const std::uint64_t* m = frontier.sleep_slot(id);
          std::copy(m, m + pw, ps.cur_sleep.begin());
        }
        model.por_attach_sleep(ps.cur_sleep.data());
      }
      if (model.mark_visited(phase)) {
        moves.clear();
        switch (model.expand(phase, moves, SIZE_MAX)) {
          case SearchModel::Step::kPruned:
            break;
          case SearchModel::Step::kConverged:
            flow = model.advance(phase);
            break;
          case SearchModel::Step::kBranch:
            if (pw != 0) std::fill(ps.prior.begin(), ps.prior.end(), 0);
            for (const SearchMove& m : moves) {
              const std::uint64_t key =
                  order_ == FrontierOrder::kPriority
                      ? model.state_key_after(phase, m)  // Zobrist preview
                      : 0;
              const std::int32_t child = frontier.push(cur, m, key);
              if (pw != 0) {
                model.por_child_sleep(phase, m, ps.prior.data(),
                                      frontier.sleep_slot(child));
                mask_set(ps.prior.data(), m.node);
              }
            }
            break;
        }
      }
      if (config_.split_every != 0 && pops % config_.split_every == 0) {
        frontier.split(backlog);
      }
      if (outermost && config_.export_fn && config_.export_check_every != 0 &&
          pops % config_.export_check_every == 0 &&
          frontier.size() >= config_.export_min_frontier) {
        export_scratch_.clear();
        if (frontier.split(export_scratch_) != 0) {
          // Portable form before the offer: route ids become dictionary
          // slots backed by serialized route contents.
          for (StateSnapshot& s : export_scratch_) model.export_snapshot(s);
          if (!config_.export_fn(std::move(export_scratch_))) {
            // Declined (export window closed, send failure): the callback
            // left the snapshots intact, so the donor keeps them. The
            // import round trip restores the original local route ids
            // (re-interning existing content is the identity).
            for (StateSnapshot& s : export_scratch_) {
              if (!model.import_snapshot(s)) {
                throw std::runtime_error("declined export re-import failed");
              }
              frontier.inject(s);
            }
          }
        }
        export_scratch_.clear();
      }
    }
    // Unwind to the phase-entry state — also on kStop, and with the pending
    // frontier simply dropped: the contract is to leave the model as found.
    cur = goto_state(model, phase, frontier, cur, Frontier::kRoot);
    peak_ = std::max<std::uint64_t>(peak_, frontier.peak());
    --depth_;
    return flow;
  }

 private:
  /// Moves the model from snapshot `from` to snapshot `to`: LIFO-undoes up
  /// to their lowest common ancestor, then replays down to `to`.
  std::int32_t goto_state(SearchModel& model, std::size_t phase, Frontier& frontier,
                          std::int32_t from, std::int32_t to) {
    replay_scratch_.clear();
    std::int32_t a = from;
    std::int32_t b = to;
    while (frontier.depth(a) > frontier.depth(b)) {
      model.undo(phase, frontier.move(a));
      a = frontier.parent(a);
    }
    while (frontier.depth(b) > frontier.depth(a)) {
      replay_scratch_.push_back(b);
      b = frontier.parent(b);
    }
    while (a != b) {
      model.undo(phase, frontier.move(a));
      a = frontier.parent(a);
      replay_scratch_.push_back(b);
      b = frontier.parent(b);
    }
    for (auto it = replay_scratch_.rbegin(); it != replay_scratch_.rend(); ++it) {
      model.apply(phase, frontier.move(*it));
    }
    return to;
  }

  /// Reusable per-recursion-depth search state (phase searches nest via
  /// advance(), so depth is bounded by the task count).
  struct PhaseState {
    Frontier frontier;
    std::vector<SearchMove> moves;
    std::vector<StateSnapshot> backlog;
    std::vector<std::uint64_t> cur_sleep;  ///< popped snapshot's sleep mask
    std::vector<std::uint64_t> prior;      ///< earlier-sibling mask at push
    PhaseState(FrontierOrder order, std::uint32_t restart_interval,
               RestartPolicy restart_policy)
        : frontier(order, 0, restart_interval, restart_policy) {}
  };

  FrontierOrder order_;
  SearchEngineConfig config_;
  std::uint64_t invocations_ = 0;
  std::uint64_t peak_ = 0;
  std::size_t depth_ = 0;
  bool seeded_ = false;  ///< seed_frontier consumed (first outermost entry)
  std::vector<std::unique_ptr<PhaseState>> pool_;
  // goto_state never re-enters the engine, so one scratch is safe across
  // the nested per-phase invocations.
  std::vector<std::int32_t> replay_scratch_;
  // Export offers only happen in the outermost invocation; one scratch.
  std::vector<StateSnapshot> export_scratch_;
};

}  // namespace

const char* to_string(SearchEngineKind kind) {
  switch (kind) {
    case SearchEngineKind::kDfs: return "dfs";
    case SearchEngineKind::kSingleExecution: return "single-execution";
    case SearchEngineKind::kBfs: return "bfs";
    case SearchEngineKind::kPriority: return "priority";
    case SearchEngineKind::kRandomRestart: return "random-restart";
  }
  return "?";
}

bool parse_search_engine(const char* name, SearchEngineKind& out) {
  for (const auto kind :
       {SearchEngineKind::kDfs, SearchEngineKind::kSingleExecution,
        SearchEngineKind::kBfs, SearchEngineKind::kPriority,
        SearchEngineKind::kRandomRestart}) {
    if (std::strcmp(name, to_string(kind)) == 0) {
      out = kind;
      return true;
    }
  }
  // Convenience aliases for the CLI.
  if (std::strcmp(name, "single") == 0) {
    out = SearchEngineKind::kSingleExecution;
    return true;
  }
  return false;
}

std::unique_ptr<SearchEngine> make_search_engine(SearchEngineKind kind,
                                                 const SearchEngineConfig& config) {
  switch (kind) {
    case SearchEngineKind::kDfs: return std::make_unique<DfsEngine>();
    case SearchEngineKind::kSingleExecution:
      return std::make_unique<SingleExecutionEngine>();
    case SearchEngineKind::kBfs:
      return std::make_unique<FrontierEngine>(FrontierOrder::kFifo, config);
    case SearchEngineKind::kPriority:
      return std::make_unique<FrontierEngine>(FrontierOrder::kPriority, config);
    case SearchEngineKind::kRandomRestart:
      return std::make_unique<FrontierEngine>(FrontierOrder::kRandomRestart, config);
  }
  return std::make_unique<DfsEngine>();
}

}  // namespace plankton
