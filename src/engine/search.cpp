#include "engine/search.hpp"

namespace plankton {
namespace {

/// Depth-first search over the model's move tree. `branch_limit` caps how
/// many moves are taken per state: unlimited for the exhaustive check, one
/// for single-execution simulation.
class DfsEngine : public SearchEngine {
 public:
  explicit DfsEngine(std::size_t branch_limit = SIZE_MAX)
      : branch_limit_(branch_limit) {}

  [[nodiscard]] const char* name() const override { return "dfs"; }

  SearchFlow search(SearchModel& model, std::size_t phase) override {
    if (model.budget_exhausted()) return SearchFlow::kStop;
    if (!model.mark_visited(phase)) return SearchFlow::kContinue;
    // Reuse one move buffer per recursion level instead of allocating per
    // state. The buffer is moved out of the pool while in use, so nested
    // search() calls (recursion below, or advance() re-entering the engine
    // for the next phase) can never alias it; they are given deeper slots.
    if (pool_.size() <= depth_) pool_.emplace_back();
    std::vector<SearchMove> moves = std::move(pool_[depth_]);
    moves.clear();
    ++depth_;
    SearchFlow flow = SearchFlow::kContinue;
    switch (model.expand(phase, moves, branch_limit_)) {
      case SearchModel::Step::kPruned:
        break;
      case SearchModel::Step::kConverged:
        flow = model.advance(phase);
        break;
      case SearchModel::Step::kBranch: {
        const std::size_t take =
            moves.size() < branch_limit_ ? moves.size() : branch_limit_;
        for (std::size_t i = 0; i < take; ++i) {
          model.apply(phase, moves[i]);
          flow = search(model, phase);
          model.undo(phase, moves[i]);
          if (flow == SearchFlow::kStop) break;
        }
        break;
      }
    }
    --depth_;
    pool_[depth_] = std::move(moves);
    return flow;
  }

 private:
  std::size_t branch_limit_;
  std::size_t depth_ = 0;
  std::vector<std::vector<SearchMove>> pool_;
};

class SingleExecutionEngine final : public DfsEngine {
 public:
  SingleExecutionEngine() : DfsEngine(1) {}
  [[nodiscard]] const char* name() const override { return "single-execution"; }
};

}  // namespace

const char* to_string(SearchEngineKind kind) {
  switch (kind) {
    case SearchEngineKind::kDfs: return "dfs";
    case SearchEngineKind::kSingleExecution: return "single-execution";
  }
  return "?";
}

std::unique_ptr<SearchEngine> make_search_engine(SearchEngineKind kind) {
  switch (kind) {
    case SearchEngineKind::kDfs: return std::make_unique<DfsEngine>();
    case SearchEngineKind::kSingleExecution:
      return std::make_unique<SingleExecutionEngine>();
  }
  return std::make_unique<DfsEngine>();
}

}  // namespace plankton
