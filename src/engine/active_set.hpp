// Incremental set utilities for allocation-free search hot paths.
//
// The SearchModel contract (engine/search.hpp) guarantees strict LIFO
// apply()/undo() pairing per phase, so a model can maintain its enabled /
// conflict bookkeeping *incrementally*: each apply or undo tells the model
// exactly which nodes' status may have changed (the move's node and its
// peers — the dirty set), and expand() then consumes the maintained set
// instead of rescanning every member. These two containers are the
// engine-layer substrate for that protocol:
//
//   · IncrementalActiveSet — a sorted id set with O(1) membership flags and
//     localized insert/erase, iterated in ascending id order so an
//     incremental expand() enumerates moves in exactly the order a full
//     member rescan would (bit-identical exploration);
//   · StampSet — generation-stamped membership, replacing O(n) clear-and-
//     refill scratch bitmaps (component BFS, influencer marking) with an
//     O(1) epoch bump.
//
// Neither allocates in steady state: capacity is reserved once and reused
// across the millions of apply/undo/expand cycles of an exploration.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace plankton {

/// Sorted set of small integer ids with O(1) membership and incremental
/// updates. insert/erase shift the tail of the dense sorted vector — cheap
/// because active sets in RPVP are tiny compared to the member count.
class IncrementalActiveSet {
 public:
  /// Sizes the membership flags for ids in [0, universe); drops contents.
  void reset(std::size_t universe) {
    flag_.assign(universe, 0);
    items_.clear();
  }

  /// Removes all items, keeping capacity (O(size), not O(universe)).
  void clear() {
    for (const std::uint32_t id : items_) flag_[id] = 0;
    items_.clear();
  }

  [[nodiscard]] bool contains(std::uint32_t id) const { return flag_[id] != 0; }

  void insert(std::uint32_t id) {
    if (flag_[id] != 0) return;
    flag_[id] = 1;
    items_.insert(std::lower_bound(items_.begin(), items_.end(), id), id);
  }

  void erase(std::uint32_t id) {
    if (flag_[id] == 0) return;
    flag_[id] = 0;
    items_.erase(std::lower_bound(items_.begin(), items_.end(), id));
  }

  /// Members in ascending id order. Invalidated by insert/erase.
  [[nodiscard]] std::span<const std::uint32_t> items() const { return items_; }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

 private:
  std::vector<std::uint32_t> items_;  ///< sorted ascending
  std::vector<std::uint8_t> flag_;    ///< [id] membership
};

/// Membership bitmap cleared in O(1) by bumping an epoch instead of
/// refilling the array. mark()/marked() are valid until the next begin().
class StampSet {
 public:
  void reset(std::size_t universe) {
    stamp_.assign(universe, 0);
    epoch_ = 1;  // stamps start at 0: a freshly reset set reads as empty
  }

  /// Starts a new empty epoch.
  void begin() { ++epoch_; }

  void mark(std::uint32_t id) { stamp_[id] = epoch_; }
  [[nodiscard]] bool marked(std::uint32_t id) const {
    return stamp_[id] == epoch_;
  }

 private:
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 1;
};

}  // namespace plankton
