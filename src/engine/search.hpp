// Pluggable exploration strategies for the per-prefix RPVP search.
//
// The protocol-semantics side (the RPVP model in src/rpvp/) exposes itself
// as a SearchModel: it can classify the current state of a phase (pruned /
// converged / branching, producing the reduced move set after §4.1–§4.2
// partial-order and policy optimizations), apply and undo single moves in
// place, and advance to the next phase when a phase converges. A
// SearchEngine owns only the *order* in which that move tree is walked:
//
//   kDfs              exhaustive depth-first search — the paper's strategy;
//   kSingleExecution  follows the first move at every branch point: one
//                     non-deterministic execution, i.e. Batfish-style
//                     simulation (paper Fig. 1, "all data planes" row);
//   kBfs              exhaustive breadth-first search over a snapshot
//                     frontier (engine/frontier.hpp);
//   kPriority         exhaustive best-first search ordered by StateCodec
//                     keys (a deterministic shuffle of the move tree);
//   kRandomRestart    exhaustive seeded random exploration with periodic
//                     restarts to the shallowest pending state.
//
// The frontier strategies visit exactly the same state set as kDfs — they
// only reorder it — so every exhaustive engine must produce identical
// violation sets (tests/test_engine_differential.cpp enforces this on
// randomized topologies).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netbase/topology.hpp"
#include "protocols/route.hpp"

namespace plankton {

enum class SearchFlow : std::uint8_t { kContinue, kStop };

/// One transition of the per-phase RPVP state machine.
struct SearchMove {
  enum class Kind : std::uint8_t {
    kSelect,    ///< node adopts an advertised route
    kWithdraw,  ///< invalid node with no replacement drops its route
  };
  Kind kind = Kind::kSelect;
  NodeId node = kNoNode;
  NodeId peer = kNoNode;        ///< advertising peer (kNoNode when merged)
  RouteId route = kNoRoute;
  RouteId prev = kNoRoute;      ///< filled by apply(); consumed by undo()
};

/// A self-contained, restorable position in one phase's move tree: the move
/// path from the phase-entry root, in application order. `key` carries the
/// StateCodec key used by priority ordering (0 when not computed). `sleep`
/// is the snapshot's DPOR sleep mask (empty when POR is off) — split-off
/// work inherits it, so spawned subtasks keep pruning exactly what the
/// donor would have pruned. Snapshots are also what crosses process (and
/// host) boundaries for intra-PEC work export (sched/shard.*).
struct StateSnapshot {
  std::vector<SearchMove> path;
  std::uint64_t key = 0;
  std::vector<std::uint64_t> sleep;
  /// Model-opaque route dictionary (see SearchModel::export_snapshot): the
  /// moves' RouteId fields are indexes into the donor's interned route
  /// table, meaningless in another process. An exported snapshot carries
  /// the referenced route *contents* here and its moves are rewritten to
  /// 1-based dictionary slots; import_snapshot() re-interns them locally.
  /// Empty for snapshots that never leave the donor process.
  std::string route_dict;
};

/// The model side of the search: protocol semantics + pruning, no strategy.
///
/// Dirty-set contract: engines drive each phase with strict stack
/// discipline — apply() and undo() come in LIFO pairs, expand() is called
/// at most once between them, and no other mutation happens in between.
/// A model may therefore maintain its enabled/conflict bookkeeping
/// *incrementally*: every apply/undo names the move's node, which together
/// with its peers is the complete dirty set of nodes whose status can have
/// changed, so expand() can consume a maintained active set
/// (engine/active_set.hpp) instead of rescanning all members. Engines must
/// not teleport between states behind the model's back: frontier engines,
/// which logically jump around the move tree, physically travel between
/// snapshots through LIFO undo of the current path and replay of the target
/// path (engine/frontier.hpp), so the discipline — and with it the
/// incremental bookkeeping — holds move by move; phase entry itself goes
/// through the advance()/begin-phase path, which rebuilds the model's sets
/// from scratch.
class SearchModel {
 public:
  enum class Step : std::uint8_t {
    kPruned,     ///< state is inconsistent / subsumed — do not expand
    kConverged,  ///< no enabled moves (or outcome already decided, §4.2)
    kBranch,     ///< expand the returned moves
  };

  virtual ~SearchModel() = default;

  /// True when a global budget (states, wall clock) is exhausted; the
  /// engine must unwind with kStop.
  virtual bool budget_exhausted() = 0;

  /// Records the current state of `phase` in the visited backend; false
  /// when it was already seen (the engine skips it).
  virtual bool mark_visited(std::size_t phase) = 0;

  /// Classifies the current state and, for kBranch, fills `moves` with the
  /// reduced branching choices in preference order. `move_budget` is how
  /// many moves the engine will actually take: the model may stop
  /// enumerating once it has that many (single-execution engines pass 1, so
  /// a simulated step costs O(1) in frontier width, not O(enabled)).
  virtual Step expand(std::size_t phase, std::vector<SearchMove>& moves,
                      std::size_t move_budget) = 0;

  /// Applies / reverts one move in place. apply() stores the information
  /// undo() needs in `m.prev`.
  virtual void apply(std::size_t phase, SearchMove& m) = 0;
  virtual void undo(std::size_t phase, const SearchMove& m) = 0;

  /// Called when `phase` converged: runs the next phase (re-entering the
  /// engine) or, after the last phase, the converged-state handler.
  virtual SearchFlow advance(std::size_t phase) = 0;

  /// Canonical StateCodec key the state of `phase` would have after taking
  /// `m` from the current state — the ordering heuristic of priority
  /// frontier engines, computable without mutating the model (Zobrist
  /// preview). Models without a codec may keep the default (priority then
  /// degrades to discovery order).
  [[nodiscard]] virtual std::uint64_t state_key_after(std::size_t phase,
                                                      const SearchMove& m) const {
    (void)phase;
    (void)m;
    return 0;
  }

  // -- cross-process snapshot portability (optional) ------------------------
  // RouteIds inside SearchMoves index the model's process-local interned
  // route table, so a raw snapshot cannot be replayed elsewhere. Engines
  // call export_snapshot() on every split-off snapshot before offering it
  // to an export sink, and import_snapshot() before injecting donated (or
  // declined-and-returned) snapshots. The round trip must be the identity
  // on content: re-interning an exported route in the donor yields its
  // original id. Models without interned state keep the no-op defaults.

  /// Rewrites `s` into its portable form: route contents serialized into
  /// s.route_dict, move route fields turned into dictionary slots.
  virtual void export_snapshot(StateSnapshot& s) { (void)s; }

  /// Translates a portable snapshot back into process-local RouteIds,
  /// interning the dictionary's routes. False = the dictionary is corrupt
  /// or inconsistent with this model; the snapshot must not be replayed.
  [[nodiscard]] virtual bool import_snapshot(StateSnapshot& s) {
    (void)s;
    return true;
  }

  // -- partial-order reduction hooks (optional) -----------------------------
  // A model that returns nonzero por_words() runs sleep-set DPOR (see
  // docs/architecture.md "Partial-order reduction"). DFS engines keep the
  // sleep sets implicit in the model's LIFO path and only provide the
  // source-set backtrack hook; frontier engines store one sleep mask per
  // pending snapshot and thread it through attach/child-sleep.

  /// Mask width (64-bit words) of this model's sleep sets; 0 = POR off.
  [[nodiscard]] virtual std::size_t por_words() const { return 0; }

  /// Frontier engines: hands the model the sleep mask (`por_words()` words,
  /// engine-owned, valid until the next call) of the snapshot just restored,
  /// before its mark_visited()/expand(). Never called by DFS engines.
  virtual void por_attach_sleep(const std::uint64_t* sleep) { (void)sleep; }

  /// Frontier engines: computes into `out` the sleep mask of the child
  /// reached by `m` from the current state — (sleep ∪ prior) ∖ dep(m.node),
  /// where `prior` marks the siblings pushed before `m` and the state's own
  /// sleep mask is whatever por_attach_sleep() installed.
  virtual void por_child_sleep(std::size_t phase, const SearchMove& m,
                               const std::uint64_t* prior, std::uint64_t* out) {
    (void)phase;
    (void)m;
    (void)prior;
    (void)out;
  }

  /// DFS engines: called between sibling subtrees of the current state. The
  /// model may append source-set backtrack moves to `moves` — siblings that
  /// races observed inside the explored subtrees proved necessary.
  virtual void por_extend(std::size_t phase, std::vector<SearchMove>& moves) {
    (void)phase;
    (void)moves;
  }
};

class SearchEngine {
 public:
  virtual ~SearchEngine() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Exhausts (per strategy) the move tree of `phase` from the model's
  /// current in-place state. Must leave the model state as it found it.
  virtual SearchFlow search(SearchModel& model, std::size_t phase) = 0;

  /// High-water mark of pending frontier states across all phase searches
  /// (0 for stackless strategies like DFS) — feeds SearchStats.
  [[nodiscard]] virtual std::uint64_t frontier_peak() const { return 0; }
};

enum class SearchEngineKind : std::uint8_t {
  kDfs = 0,
  kSingleExecution = 1,
  kBfs = 2,
  kPriority = 3,
  kRandomRestart = 4,
};

/// True for strategies that explore the complete move tree (everything
/// except single-execution simulation).
[[nodiscard]] constexpr bool is_exhaustive(SearchEngineKind kind) {
  return kind != SearchEngineKind::kSingleExecution;
}

/// True for strategies driven by a snapshot frontier rather than the LIFO
/// recursion stack.
[[nodiscard]] constexpr bool is_frontier(SearchEngineKind kind) {
  return kind == SearchEngineKind::kBfs || kind == SearchEngineKind::kPriority ||
         kind == SearchEngineKind::kRandomRestart;
}

/// When kRandomRestart jumps back to the shallowest pending state.
enum class RestartPolicy : std::uint8_t {
  kFixedPeriod,  ///< every `restart_interval` pops (the original behavior)
  kLuby,         ///< after restart_interval × u_k pops, u = Luby sequence
                 ///< 1,1,2,1,1,2,4,… (OEIS A182105) — the universal optimal
                 ///< schedule for restart-based search
};

/// u_i of the Luby restart sequence, 1-indexed: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
[[nodiscard]] std::uint32_t luby_value(std::uint32_t i);

struct SearchEngineConfig {
  /// Seeds kRandomRestart's pop order (fuzz harnesses reproduce a failing
  /// exploration from the seed alone; see docs/architecture.md).
  std::uint64_t seed = 1;
  /// kRandomRestart: base unit of pops between restarts to the shallowest
  /// pending state (scaled by the Luby sequence under RestartPolicy::kLuby).
  std::uint32_t restart_interval = 64;
  RestartPolicy restart_policy = RestartPolicy::kLuby;
  /// Frontier engines: when nonzero, auto-split the frontier every N pops
  /// into a deferred backlog that is re-injected once the frontier drains —
  /// exercises the split()/inject() work-sharing path (tests, bench).
  std::uint32_t split_every = 0;

  // -- intra-PEC work export (frontier engines only) -------------------------
  // When export_fn is set, the *outermost* phase search periodically offers
  // half of its pending frontier to the callback as self-contained snapshots
  // (the donor keeps exploring the rest). A true return means the recipient
  // now owns those states; on false the donor re-injects them and keeps
  // them local — the callback must leave the vector intact in that case.
  // Only the outermost invocation exports: nested phase searches (advance()
  // re-entering the engine) sit below a parked converged prefix that a
  // remote worker could not reconstruct from the snapshot alone.
  std::function<bool(std::vector<StateSnapshot>&&)> export_fn;
  /// Pops between export offers (0 disables even with export_fn set).
  std::uint32_t export_check_every = 0;
  /// Minimum pending-frontier size before an offer is made — exporting a
  /// near-empty frontier ships more framing than work.
  std::size_t export_min_frontier = 8;
  /// When non-empty, the outermost phase search seeds its frontier from
  /// these snapshots *instead of* the phase-entry root: the receiving side
  /// of an export replays exactly the donated states (and everything below
  /// them). Consumed once, by the first outermost invocation.
  std::vector<StateSnapshot> seed_frontier;
};

[[nodiscard]] const char* to_string(SearchEngineKind kind);

/// Parses "dfs" | "single-execution" | "bfs" | "priority" | "random-restart"
/// (the CLI --engine vocabulary); returns false on unknown names.
[[nodiscard]] bool parse_search_engine(const char* name, SearchEngineKind& out);

[[nodiscard]] std::unique_ptr<SearchEngine> make_search_engine(
    SearchEngineKind kind, const SearchEngineConfig& config = {});

}  // namespace plankton
