// Pluggable exploration strategies for the per-prefix RPVP search.
//
// The protocol-semantics side (the RPVP model in src/rpvp/) exposes itself
// as a SearchModel: it can classify the current state of a phase (pruned /
// converged / branching, producing the reduced move set after §4.1–§4.2
// partial-order and policy optimizations), apply and undo single moves in
// place, and advance to the next phase when a phase converges. A
// SearchEngine owns only the *order* in which that move tree is walked:
//
//   kDfs              exhaustive depth-first search — the paper's strategy;
//   kSingleExecution  follows the first move at every branch point: one
//                     non-deterministic execution, i.e. Batfish-style
//                     simulation (paper Fig. 1, "all data planes" row).
//
// Frontier-based strategies (BFS over codec-encoded states, randomized
// restarts) slot in behind the same interface without touching protocol
// semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netbase/topology.hpp"
#include "protocols/route.hpp"

namespace plankton {

enum class SearchFlow : std::uint8_t { kContinue, kStop };

/// One transition of the per-phase RPVP state machine.
struct SearchMove {
  enum class Kind : std::uint8_t {
    kSelect,    ///< node adopts an advertised route
    kWithdraw,  ///< invalid node with no replacement drops its route
  };
  Kind kind = Kind::kSelect;
  NodeId node = kNoNode;
  NodeId peer = kNoNode;        ///< advertising peer (kNoNode when merged)
  RouteId route = kNoRoute;
  RouteId prev = kNoRoute;      ///< filled by apply(); consumed by undo()
};

/// The model side of the search: protocol semantics + pruning, no strategy.
///
/// Dirty-set contract: engines drive each phase with strict stack
/// discipline — apply() and undo() come in LIFO pairs, expand() is called
/// at most once between them, and no other mutation happens in between.
/// A model may therefore maintain its enabled/conflict bookkeeping
/// *incrementally*: every apply/undo names the move's node, which together
/// with its peers is the complete dirty set of nodes whose status can have
/// changed, so expand() can consume a maintained active set
/// (engine/active_set.hpp) instead of rescanning all members. Engines that
/// violate the discipline (e.g. frontier engines that teleport between
/// states) must instead re-enter the phase through advance()/begin-phase
/// paths that rebuild the model's sets from scratch.
class SearchModel {
 public:
  enum class Step : std::uint8_t {
    kPruned,     ///< state is inconsistent / subsumed — do not expand
    kConverged,  ///< no enabled moves (or outcome already decided, §4.2)
    kBranch,     ///< expand the returned moves
  };

  virtual ~SearchModel() = default;

  /// True when a global budget (states, wall clock) is exhausted; the
  /// engine must unwind with kStop.
  virtual bool budget_exhausted() = 0;

  /// Records the current state of `phase` in the visited backend; false
  /// when it was already seen (the engine skips it).
  virtual bool mark_visited(std::size_t phase) = 0;

  /// Classifies the current state and, for kBranch, fills `moves` with the
  /// reduced branching choices in preference order. `move_budget` is how
  /// many moves the engine will actually take: the model may stop
  /// enumerating once it has that many (single-execution engines pass 1, so
  /// a simulated step costs O(1) in frontier width, not O(enabled)).
  virtual Step expand(std::size_t phase, std::vector<SearchMove>& moves,
                      std::size_t move_budget) = 0;

  /// Applies / reverts one move in place. apply() stores the information
  /// undo() needs in `m.prev`.
  virtual void apply(std::size_t phase, SearchMove& m) = 0;
  virtual void undo(std::size_t phase, const SearchMove& m) = 0;

  /// Called when `phase` converged: runs the next phase (re-entering the
  /// engine) or, after the last phase, the converged-state handler.
  virtual SearchFlow advance(std::size_t phase) = 0;
};

class SearchEngine {
 public:
  virtual ~SearchEngine() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Exhausts (per strategy) the move tree of `phase` from the model's
  /// current in-place state. Must leave the model state as it found it.
  virtual SearchFlow search(SearchModel& model, std::size_t phase) = 0;
};

enum class SearchEngineKind : std::uint8_t {
  kDfs = 0,
  kSingleExecution = 1,
};

[[nodiscard]] const char* to_string(SearchEngineKind kind);

[[nodiscard]] std::unique_ptr<SearchEngine> make_search_engine(
    SearchEngineKind kind);

}  // namespace plankton
