// Frontier-based exploration for the per-phase RPVP search.
//
// The DFS engine walks the move tree with strict LIFO apply/undo pairing and
// therefore needs no state storage beyond the recursion stack. Frontier
// engines (BFS, priority over StateCodec keys, seeded random-restart) instead
// keep a set of *pending* states and jump between them in an order of their
// own choosing. Because the SearchModel mutates one state in place, a pending
// state is represented as a StateSnapshot: the move path from the phase-entry
// root. Restoring snapshot B from snapshot A undoes A's path back to the
// lowest common ancestor and replays B's suffix — every undo still reverts
// the most recently applied move, so the model's incremental dirty-set
// bookkeeping (engine/active_set.hpp) stays valid throughout.
//
// Paths are stored structurally shared: the Frontier owns an arena of
// (parent, move) nodes, so a frontier of W states at depth D costs O(W + E)
// nodes (E = tree edges discovered), not O(W × D) moves.
//
// split() detaches roughly half of the pending states as self-contained
// snapshots and inject() accepts them back — the work-sharing hook that makes
// intra-PEC exploration splittable (the scheduler side is
// sched::TaskContext::spawn; see docs/architecture.md "Exploration
// strategies").
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "engine/search.hpp"

namespace plankton {

// StateSnapshot itself lives in engine/search.hpp: work-export plumbing
// (SearchEngineConfig::export_fn, the shard wire codecs) needs the type
// without pulling in the full Frontier.

/// Pending-state ordering policy of a frontier engine.
enum class FrontierOrder : std::uint8_t {
  kFifo,           ///< breadth-first: expand in discovery order
  kPriority,       ///< smallest StateCodec key first (deterministic shuffle)
  kRandomRestart,  ///< seeded uniform pops + periodic restart to the
                   ///< shallowest pending state
};

/// The pending-state set of one phase search. Stores positions as indices
/// into a structurally-shared path arena; hands them out per `order`.
class Frontier {
 public:
  /// Arena id of the phase-entry root (the empty path).
  static constexpr std::int32_t kRoot = -1;

  Frontier(FrontierOrder order, std::uint64_t seed, std::uint32_t restart_interval,
           RestartPolicy restart_policy = RestartPolicy::kLuby)
      : order_(order),
        rng_(seed),
        restart_interval_(restart_interval),
        restart_policy_(restart_policy) {
    next_restart_ = restart_interval_;
  }

  /// Drops all pending states and the path arena (keeping their capacity)
  /// and reseeds the pop order — engines reuse one Frontier per recursion
  /// depth across the many phase searches of a run instead of reallocating.
  void reset(std::uint64_t seed) {
    rng_.seed(seed);
    pops_ = 0;
    next_seq_ = 0;
    arena_.clear();
    pending_.clear();
    head_ = 0;
    live_ = 0;
    peak_ = 0;
    luby_index_ = 0;
    next_restart_ = restart_interval_;
    sleep_words_ = 0;
    sleep_pool_.clear();
  }

  /// Opts the arena into per-snapshot DPOR sleep masks of `words` 64-bit
  /// words (call after reset(); 0 disables). sleep_slot() then hands out
  /// writable storage per pushed node.
  void enable_sleep(std::size_t words) { sleep_words_ = words; }

  /// Writable sleep mask of arena node `id` (valid until the next push).
  [[nodiscard]] std::uint64_t* sleep_slot(std::int32_t id) {
    const std::size_t need = (static_cast<std::size_t>(id) + 1) * sleep_words_;
    if (sleep_pool_.size() < need) sleep_pool_.resize(need, 0);
    return &sleep_pool_[static_cast<std::size_t>(id) * sleep_words_];
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }
  /// High-water mark of pending states (memory accounting).
  [[nodiscard]] std::size_t peak() const { return peak_; }

  /// Registers the child of `parent` reached by `move` and makes it pending.
  /// Returns its arena id. `key` orders kPriority pops.
  std::int32_t push(std::int32_t parent, const SearchMove& move, std::uint64_t key);

  /// Makes the phase-entry root pending (start of a search).
  void push_root();

  /// Removes and returns the next pending arena id per the ordering policy.
  /// Precondition: !empty().
  std::int32_t pop();

  /// Moves roughly half of the pending states (the most recently discovered
  /// end) into `out` as self-contained snapshots, removing them from this
  /// frontier. Returns how many snapshots were moved.
  std::size_t split(std::vector<StateSnapshot>& out);

  /// Re-admits a split-off snapshot as a pending state rooted at kRoot.
  void inject(const StateSnapshot& snap);

  /// The move path from the root to arena node `id` (empty for kRoot), in
  /// application order.
  void path_to(std::int32_t id, std::vector<SearchMove>& out) const;

  // -- restore plumbing (used by the frontier engine) ------------------------
  [[nodiscard]] std::int32_t parent(std::int32_t id) const {
    return arena_[static_cast<std::size_t>(id)].parent;
  }
  [[nodiscard]] std::uint32_t depth(std::int32_t id) const {
    return id == kRoot ? 0 : arena_[static_cast<std::size_t>(id)].depth;
  }
  /// Mutable: SearchModel::apply() stores undo information in the move.
  [[nodiscard]] SearchMove& move(std::int32_t id) {
    return arena_[static_cast<std::size_t>(id)].move;
  }

  [[nodiscard]] std::size_t bytes() const;

 private:
  struct PathNode {
    std::int32_t parent = kRoot;
    std::uint32_t depth = 0;
    SearchMove move;
  };
  struct Entry {
    std::int32_t id = kRoot;
    std::uint64_t key = 0;
    std::uint32_t depth = 0;
    std::uint64_t seq = 0;  ///< discovery order: FIFO order and tie-break
  };

  /// Min-heap comparison for kPriority: smallest (key, seq) on top.
  static bool heap_after(const Entry& x, const Entry& y) {
    return x.key != y.key ? x.key > y.key : x.seq > y.seq;
  }

  void add_entry(Entry e);

  FrontierOrder order_;
  std::mt19937_64 rng_;
  std::uint32_t restart_interval_;
  RestartPolicy restart_policy_ = RestartPolicy::kLuby;
  std::uint32_t luby_index_ = 0;      ///< kLuby: index into the u sequence
  std::uint64_t next_restart_ = 64;   ///< kLuby: pop count of the next restart
  std::uint64_t pops_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t sleep_words_ = 0;                 ///< 0 = sleep masks off
  std::vector<std::uint64_t> sleep_pool_;       ///< [arena id][word]
  std::vector<PathNode> arena_;
  /// Pending entries. kFifo consumes from `head_` (stale slots are left
  /// behind and reclaimed wholesale); kPriority keeps [head_, end) as a heap
  /// with head_ == 0; kRandomRestart swap-removes.
  std::vector<Entry> pending_;
  std::size_t head_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace plankton
