#include "engine/frontier.hpp"

#include <algorithm>
#include <cassert>

namespace plankton {

// ---------------------------------------------------------------------------
// Frontier
// ---------------------------------------------------------------------------

void Frontier::add_entry(Entry e) {
  if (order_ == FrontierOrder::kFifo) {
    // Reclaim the consumed prefix wholesale once it dominates the vector;
    // amortized O(1) per push, no deque indirection.
    if (head_ > 64 && head_ * 2 > pending_.size()) {
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
    pending_.push_back(e);
  } else if (order_ == FrontierOrder::kPriority) {
    pending_.push_back(e);
    std::push_heap(pending_.begin(), pending_.end(), heap_after);
  } else {
    pending_.push_back(e);
  }
  ++live_;
  peak_ = std::max(peak_, live_);
}

std::int32_t Frontier::push(std::int32_t parent, const SearchMove& move,
                            std::uint64_t key) {
  PathNode node;
  node.parent = parent;
  node.depth = depth(parent) + 1;
  node.move = move;
  const auto id = static_cast<std::int32_t>(arena_.size());
  arena_.push_back(node);
  add_entry(Entry{id, key, node.depth, next_seq_++});
  return id;
}

void Frontier::push_root() { add_entry(Entry{kRoot, 0, 0, next_seq_++}); }

std::int32_t Frontier::pop() {
  assert(live_ > 0);
  --live_;
  ++pops_;
  switch (order_) {
    case FrontierOrder::kFifo:
      return pending_[head_++].id;
    case FrontierOrder::kPriority: {
      std::pop_heap(pending_.begin(), pending_.end(), heap_after);
      const std::int32_t id = pending_.back().id;
      pending_.pop_back();
      return id;
    }
    case FrontierOrder::kRandomRestart: {
      bool restart = false;
      if (restart_interval_ != 0) {
        if (restart_policy_ == RestartPolicy::kFixedPeriod) {
          restart = pops_ % restart_interval_ == 0;
        } else if (pops_ >= next_restart_) {
          // Luby schedule: successive restart gaps of interval × u_k where
          // u = 1,1,2,1,1,2,4,… — log-optimal for unknown runtime
          // distributions, and far less periodic than the fixed schedule.
          restart = true;
          next_restart_ +=
              std::uint64_t{restart_interval_} * luby_value(++luby_index_);
        }
      }
      std::size_t pick;
      if (restart) {
        // Restart: jump to the shallowest pending state (nearest the phase
        // root), diversifying away from the current deep region.
        pick = 0;
        for (std::size_t i = 1; i < pending_.size(); ++i) {
          if (pending_[i].depth < pending_[pick].depth) pick = i;
        }
      } else {
        pick = static_cast<std::size_t>(rng_() % pending_.size());
      }
      const std::int32_t id = pending_[pick].id;
      pending_[pick] = pending_.back();
      pending_.pop_back();
      return id;
    }
  }
  return kRoot;  // unreachable
}

void Frontier::path_to(std::int32_t id, std::vector<SearchMove>& out) const {
  out.clear();
  for (std::int32_t n = id; n != kRoot; n = arena_[static_cast<std::size_t>(n)].parent) {
    out.push_back(arena_[static_cast<std::size_t>(n)].move);
  }
  std::reverse(out.begin(), out.end());
}

std::size_t Frontier::split(std::vector<StateSnapshot>& out) {
  const std::size_t take = live_ / 2;
  if (take == 0) return 0;
  // Detach the most recently discovered end (for kFifo the back of the
  // queue, i.e. the states a thief would steal; for the others an arbitrary
  // but deterministic half — ordering across a split is not part of any
  // engine's contract).
  for (std::size_t i = 0; i < take; ++i) {
    const Entry e = pending_.back();
    pending_.pop_back();
    StateSnapshot snap;
    snap.key = e.key;
    path_to(e.id, snap.path);
    if (sleep_words_ != 0 && e.id != kRoot) {
      // Detached work inherits its DPOR sleep mask (ISSUE: spawned subtasks
      // must keep pruning what the donor's path already covered).
      const std::uint64_t* m = sleep_slot(e.id);
      snap.sleep.assign(m, m + sleep_words_);
    }
    out.push_back(std::move(snap));
  }
  if (order_ == FrontierOrder::kPriority) {
    std::make_heap(pending_.begin(), pending_.end(), heap_after);
  }
  live_ -= take;
  return take;
}

void Frontier::inject(const StateSnapshot& snap) {
  // Rebuild the snapshot's path as a fresh arena chain from the root. The
  // interior nodes are not pending — only the endpoint is re-admitted.
  std::int32_t at = kRoot;
  for (std::size_t i = 0; i < snap.path.size(); ++i) {
    PathNode node;
    node.parent = at;
    node.depth = depth(at) + 1;
    node.move = snap.path[i];
    at = static_cast<std::int32_t>(arena_.size());
    arena_.push_back(node);
  }
  if (sleep_words_ != 0 && at != kRoot && !snap.sleep.empty()) {
    std::copy(snap.sleep.begin(), snap.sleep.end(), sleep_slot(at));
  }
  add_entry(Entry{at, snap.key, depth(at), next_seq_++});
}

std::uint32_t luby_value(std::uint32_t i) {
  // u_i = 2^(k-1) when i == 2^k - 1; else u_{i - 2^(k-1) + 1} for the k
  // with 2^(k-1) <= i < 2^k - 1 (Luby, Sinclair & Zuckerman 1993).
  for (std::uint32_t k = 1; k < 32; ++k) {
    const std::uint32_t pow = std::uint32_t{1} << k;
    if (i == pow - 1) return pow >> 1;
    if (i < pow - 1) return luby_value(i - (pow >> 1) + 1);
  }
  return 1;
}

std::size_t Frontier::bytes() const {
  return arena_.capacity() * sizeof(PathNode) +
         pending_.capacity() * sizeof(Entry) +
         sleep_pool_.capacity() * sizeof(std::uint64_t);
}

}  // namespace plankton
