#include "engine/independence.hpp"

#include <algorithm>

namespace plankton {

void IndependenceOracle::reset(std::size_t phases, std::size_t nodes) {
  nodes_ = nodes;
  words_ = (nodes + 63) / 64;
  rows_.resize(phases);
  for (auto& r : rows_) r.assign(nodes_ * words_, 0);
}

void IndependenceOracle::add_transition(std::size_t phase, NodeId node,
                                        std::span<const NodeId> reads) {
  auto& row = rows_[phase];
  set(row, node, node);
  for (const NodeId r : reads) {
    set(row, node, r);
    set(row, r, node);
  }
}

void IndependenceOracle::set_all_dependent(std::size_t phase) {
  std::fill(rows_[phase].begin(), rows_[phase].end(), ~std::uint64_t{0});
}

std::size_t IndependenceOracle::bytes() const {
  std::size_t total = 0;
  for (const auto& r : rows_) total += r.capacity() * sizeof(std::uint64_t);
  return total;
}

}  // namespace plankton
