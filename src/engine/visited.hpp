// Visited-state storage for the explicit-state search (§4.4, Fig. 9).
//
// SPIN-style: states are never stored whole; the search only remembers a
// canonical 64-bit key produced by the StateCodec. How those keys are kept
// is a runtime-pluggable policy behind VisitedBackend:
//
//   kExact        64-bit keys in an open-addressing table — no key ever
//                 aliases another (collisions of the *codec* hash aside).
//   kHashCompact  32-bit compacted keys (SPIN's hash compaction): half the
//                 memory, a ~n²/2³² chance of wrongly skipping a state.
//   kBitstate     k Bloom-filter bits per state (paper §5, Fig. 9): a large
//                 memory reduction for a tiny probability of missed states
//                 (reported coverage >99.9%).
//
// Backends are selected via ExploreOptions::visited; search code only sees
// the interface.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "netbase/hash.hpp"

namespace plankton {
namespace detail {

/// Open-addressing hash set over non-zero integer slots (0 = empty). The
/// slot width is the compaction knob: 64-bit slots for the exact store,
/// 32-bit for SPIN-style hash compaction.
template <typename Slot>
class OpenAddressSet {
 public:
  explicit OpenAddressSet(std::size_t initial_capacity = 1 << 12) {
    const std::size_t cap =
        std::bit_ceil(initial_capacity < 16 ? 16 : initial_capacity);
    slots_.assign(cap, 0);
  }

  /// Inserts `v` (must be non-zero); true when not present before.
  bool insert(Slot v) {
    if ((size_ + 1) * 4 >= slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(v) & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == v) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = v;
    ++size_;
    return true;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t bytes() const {
    return slots_.size() * sizeof(Slot);
  }

  /// Visits every stored value (order is table order, not insertion order).
  /// Used by the graceful-degradation path to migrate an exact store into a
  /// compacted one under memory pressure.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot v : slots_) {
      if (v != 0) fn(v);
    }
  }

  void clear() {
    slots_.assign(slots_.size(), 0);
    size_ = 0;
  }

 private:
  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    const std::size_t mask = slots_.size() - 1;
    for (const Slot v : old) {
      if (v == 0) continue;
      std::size_t i = static_cast<std::size_t>(v) & mask;
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = v;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace detail

/// Open-addressing set of 64-bit hashes, also used directly for the small
/// exact dedup sets (failure sets, policy signatures, outcomes).
class VisitedSet {
 public:
  explicit VisitedSet(std::size_t initial_capacity = 1 << 12)
      : set_(initial_capacity) {}

  /// Inserts `h`; returns true when the hash was not present before.
  bool insert(std::uint64_t h) {
    if (h == 0) h = 0x9e3779b97f4a7c15ull;  // reserve 0 for "empty"
    return set_.insert(h);
  }

  [[nodiscard]] std::size_t size() const { return set_.size(); }
  [[nodiscard]] std::size_t bytes() const { return set_.bytes(); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    set_.for_each(fn);
  }

  void clear() { set_.clear(); }

 private:
  detail::OpenAddressSet<std::uint64_t> set_;
};

/// Double-hashed Bloom filter over 64-bit state hashes.
class BloomFilter {
 public:
  explicit BloomFilter(std::size_t bits, int hashes = 4);

  /// Sets the state's bits; returns true when at least one bit was clear
  /// (i.e. the state is definitely new).
  bool insert(std::uint64_t h);

  [[nodiscard]] std::size_t bytes() const { return words_.size() * sizeof(std::uint64_t); }
  [[nodiscard]] std::uint64_t approx_states() const { return inserted_; }

  void clear();

 private:
  std::vector<std::uint64_t> words_;
  std::uint64_t mask_;
  int hashes_;
  std::uint64_t inserted_ = 0;
};

enum class VisitedKind : std::uint8_t {
  kExact = 0,
  kHashCompact = 1,
  kBitstate = 2,
};

[[nodiscard]] const char* to_string(VisitedKind kind);

/// Storage policy for the set of visited canonical state keys.
class VisitedBackend {
 public:
  virtual ~VisitedBackend() = default;

  /// Inserts the state key; returns true when the state is (believed) new.
  virtual bool insert(std::uint64_t key) = 0;

  /// States recorded so far (approximate for lossy backends).
  [[nodiscard]] virtual std::size_t stored() const = 0;
  [[nodiscard]] virtual std::size_t bytes() const = 0;
  virtual void clear() = 0;

  [[nodiscard]] virtual VisitedKind kind() const = 0;
  /// False when the backend may report an unseen state as seen (lossy
  /// compaction) — coverage is then probabilistic, as in Fig. 9.
  [[nodiscard]] virtual bool exhaustive() const = 0;
  /// Graceful degradation under memory pressure
  /// (ResourceBudget::degrade_visited): rebuilds this backend's contents in
  /// hash-compacted form — half the bytes, exhaustive() turns false. Only
  /// the exact backend can migrate (it alone still holds full keys); lossy
  /// backends return nullptr and the memory budget trips instead.
  [[nodiscard]] virtual std::unique_ptr<VisitedBackend> degrade_to_compact()
      const {
    return nullptr;
  }
  [[nodiscard]] const char* name() const { return to_string(kind()); }
};

struct VisitedConfig {
  std::size_t bloom_bits = std::size_t{1} << 27;  ///< kBitstate filter size
  int bloom_hashes = 4;
};

[[nodiscard]] std::unique_ptr<VisitedBackend> make_visited_backend(
    VisitedKind kind, const VisitedConfig& config = {});

}  // namespace plankton
