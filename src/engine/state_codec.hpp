// Canonical state encoding for the RPVP search.
//
// The model checker never stores states whole: each control-plane state is
// reduced to a 64-bit canonical key. The StateCodec owns that encoding so
// the search and the protocol semantics need not know how states are
// identified:
//
//   · per-phase RIBs are hashed incrementally with an order-independent
//     Zobrist XOR over (node, route) pairs — applying and undoing a move is
//     O(1) and commutative, so permutations of the same RIB collide by
//     construction (that is the point: RPVP states are RIB-valued);
//   · phases are chained: the key of phase t folds in the converged RIB
//     hashes of phases 0..t-1 plus the failure-set / upstream-outcome
//     context, so identical RIBs reached under different histories stay
//     distinct (§3.3).
//
// Keys feed the VisitedBackend; nothing else about state identity leaks out.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/hash.hpp"
#include "netbase/topology.hpp"
#include "protocols/route.hpp"

namespace plankton {

class StateCodec {
 public:
  /// Prepares per-phase accumulators for `phases` search phases.
  void reset(std::size_t phases);

  /// Sets the phase-0 context from the failure set and the chosen upstream
  /// converged outcome (0 when there is none).
  void begin_root(std::uint64_t failures_hash, std::uint64_t upstream_hash);

  /// Starts phase `t`: chains the context hash from phase t-1's converged
  /// RIB (t > 0) and resets t's RIB accumulator to the all-⊥ RIB.
  void begin_phase(std::size_t t);

  /// Records that node `n`'s RIB entry in phase `t` changed old -> now.
  void record(std::size_t t, NodeId n, RouteId old_route, RouteId new_route) {
    rib_hash_[t] ^= zob(n, old_route) ^ zob(n, new_route);
  }

  /// Order-independent hash of phase `t`'s current RIB.
  [[nodiscard]] std::uint64_t rib_hash(std::size_t t) const {
    return rib_hash_[t];
  }

  /// Canonical key of the full search state while phase `t` executes.
  [[nodiscard]] std::uint64_t state_key(std::size_t t) const {
    return hash_combine(ctx_hash_[t], hash_combine(rib_hash_[t], t + 1));
  }

  /// Key the state *would* have after node `n`'s entry changed old -> now —
  /// the Zobrist XOR makes the successor key computable without mutating
  /// anything (priority engines rank children this way, sparing a full
  /// apply/undo probe per child).
  [[nodiscard]] std::uint64_t preview_key(std::size_t t, NodeId n,
                                          RouteId old_route,
                                          RouteId new_route) const {
    const std::uint64_t rib = rib_hash_[t] ^ zob(n, old_route) ^ zob(n, new_route);
    return hash_combine(ctx_hash_[t], hash_combine(rib, t + 1));
  }

 private:
  /// Zobrist contribution of (node, route) to the order-independent hash.
  [[nodiscard]] static std::uint64_t zob(NodeId n, RouteId r) {
    return hash_mix((std::uint64_t{n} << 32) ^ r ^ 0xabcd1234u);
  }

  std::vector<std::uint64_t> rib_hash_;  ///< [phase] incremental RIB hash
  std::vector<std::uint64_t> ctx_hash_;  ///< [phase] chained history context
};

}  // namespace plankton
