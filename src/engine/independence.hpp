// Commutativity oracle for dynamic partial-order reduction (DPOR).
//
// A move of the per-phase RPVP state machine at node n writes rib[n] and
// reads rib[p] for every session peer p of n (that is the complete footprint:
// enabled-status refresh, candidate collection and advertisement evaluation
// all read only the node's own entry and its peers'). Two moves *conflict*
// iff one writes an entry the other reads or writes:
//
//   dep(a, b)  ⇔  a == b  ∨  a ∈ peers(b)  ∨  b ∈ peers(a)
//
// Everything else commutes: applying two independent moves in either order
// reaches the same state, and neither changes the other's candidate set
// (tests/test_independence.cpp checks this against the real protocol
// processes). The oracle stores the relation as one bitmask row per node so
// the sleep-set hot path is a handful of word operations.
//
// Processes with impure advertisement (hidden route-map state that
// cacheable() == false flags) get the conservative all-dependent relation:
// sleep sets then never populate and exploration is unchanged for that task.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netbase/topology.hpp"

namespace plankton {

/// Dense per-phase dependence relation over node-granularity transitions,
/// derived from read/write footprints. dep is symmetric and reflexive;
/// independence is its complement (symmetric and irreflexive).
class IndependenceOracle {
 public:
  /// Clears the relation to "no transitions declared" (everything
  /// vacuously independent) for `phases` × `nodes`.
  void reset(std::size_t phases, std::size_t nodes);

  [[nodiscard]] std::size_t words() const { return words_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_; }
  [[nodiscard]] std::size_t phase_count() const { return rows_.size(); }

  /// Declares the transition at `node`: write set {node}, read set `reads`.
  /// Conflicts accumulate symmetrically — write/write on the same node, and
  /// write/read in either direction against previously declared transitions
  /// (node-granularity: the reader's own transition writes its node).
  void add_transition(std::size_t phase, NodeId node,
                      std::span<const NodeId> reads);

  /// Conservative fallback: every pair of moves in `phase` conflicts.
  void set_all_dependent(std::size_t phase);

  /// The dependence bitmask row of `node` (`words()` words).
  [[nodiscard]] const std::uint64_t* row(std::size_t phase, NodeId node) const {
    return &rows_[phase][std::size_t{node} * words_];
  }

  [[nodiscard]] bool dependent(std::size_t phase, NodeId a, NodeId b) const {
    return ((row(phase, a)[b >> 6] >> (b & 63)) & 1) != 0;
  }
  [[nodiscard]] bool independent(std::size_t phase, NodeId a, NodeId b) const {
    return !dependent(phase, a, b);
  }

  [[nodiscard]] std::size_t bytes() const;

 private:
  void set(std::vector<std::uint64_t>& row, NodeId a, NodeId b) const {
    row[std::size_t{a} * words_ + (b >> 6)] |= std::uint64_t{1} << (b & 63);
  }

  std::size_t nodes_ = 0;
  std::size_t words_ = 0;
  std::vector<std::vector<std::uint64_t>> rows_;  ///< [phase][node * words]
};

// -- sleep-set mask helpers (shared by the DFS and frontier POR paths) -------

inline bool mask_test(const std::uint64_t* m, NodeId n) {
  return ((m[n >> 6] >> (n & 63)) & 1) != 0;
}
inline void mask_set(std::uint64_t* m, NodeId n) {
  m[n >> 6] |= std::uint64_t{1} << (n & 63);
}

/// child = (sleep ∪ prior) ∖ dep — the sleep set inherited by the child
/// reached by a move whose dependence row is `dep`, after the siblings in
/// `prior` have been (or will be) explored from the parent.
inline void sleep_child(std::uint64_t* child, const std::uint64_t* sleep,
                        const std::uint64_t* prior, const std::uint64_t* dep,
                        std::size_t words) {
  for (std::size_t i = 0; i < words; ++i) {
    child[i] = (sleep[i] | prior[i]) & ~dep[i];
  }
}

}  // namespace plankton
