# Empty dependencies file for fig7b_large_fattrees.
# This may be replaced when dependencies are built.
