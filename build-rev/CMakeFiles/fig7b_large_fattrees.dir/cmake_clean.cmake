file(REMOVE_RECURSE
  "CMakeFiles/fig7b_large_fattrees.dir/bench/fig7b_large_fattrees.cpp.o"
  "CMakeFiles/fig7b_large_fattrees.dir/bench/fig7b_large_fattrees.cpp.o.d"
  "fig7b_large_fattrees"
  "fig7b_large_fattrees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_large_fattrees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
