# Empty dependencies file for test_exploration_equivalence.
# This may be replaced when dependencies are built.
