file(REMOVE_RECURSE
  "CMakeFiles/test_exploration_equivalence.dir/tests/test_exploration_equivalence.cpp.o"
  "CMakeFiles/test_exploration_equivalence.dir/tests/test_exploration_equivalence.cpp.o.d"
  "test_exploration_equivalence"
  "test_exploration_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exploration_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
