file(REMOVE_RECURSE
  "CMakeFiles/test_engine_differential.dir/tests/test_engine_differential.cpp.o"
  "CMakeFiles/test_engine_differential.dir/tests/test_engine_differential.cpp.o.d"
  "test_engine_differential"
  "test_engine_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
