# Empty dependencies file for test_replay_and_simulation.
# This may be replaced when dependencies are built.
