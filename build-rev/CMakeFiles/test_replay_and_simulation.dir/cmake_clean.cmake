file(REMOVE_RECURSE
  "CMakeFiles/test_replay_and_simulation.dir/tests/test_replay_and_simulation.cpp.o"
  "CMakeFiles/test_replay_and_simulation.dir/tests/test_replay_and_simulation.cpp.o.d"
  "test_replay_and_simulation"
  "test_replay_and_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replay_and_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
