file(REMOVE_RECURSE
  "CMakeFiles/test_outcome_store.dir/tests/test_outcome_store.cpp.o"
  "CMakeFiles/test_outcome_store.dir/tests/test_outcome_store.cpp.o.d"
  "test_outcome_store"
  "test_outcome_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outcome_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
