# Empty dependencies file for test_outcome_store.
# This may be replaced when dependencies are built.
