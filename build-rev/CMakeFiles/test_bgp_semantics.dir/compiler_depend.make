# Empty compiler generated dependencies file for test_bgp_semantics.
# This may be replaced when dependencies are built.
