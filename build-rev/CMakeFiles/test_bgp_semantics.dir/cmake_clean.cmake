file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_semantics.dir/tests/test_bgp_semantics.cpp.o"
  "CMakeFiles/test_bgp_semantics.dir/tests/test_bgp_semantics.cpp.o.d"
  "test_bgp_semantics"
  "test_bgp_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
