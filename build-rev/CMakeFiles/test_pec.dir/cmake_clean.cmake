file(REMOVE_RECURSE
  "CMakeFiles/test_pec.dir/tests/test_pec.cpp.o"
  "CMakeFiles/test_pec.dir/tests/test_pec.cpp.o.d"
  "test_pec"
  "test_pec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
