# Empty dependencies file for test_pec.
# This may be replaced when dependencies are built.
