# Empty compiler generated dependencies file for test_smt_units.
# This may be replaced when dependencies are built.
