file(REMOVE_RECURSE
  "CMakeFiles/test_smt_units.dir/tests/test_smt_units.cpp.o"
  "CMakeFiles/test_smt_units.dir/tests/test_smt_units.cpp.o.d"
  "test_smt_units"
  "test_smt_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smt_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
