# Empty dependencies file for fig7f_bonsai.
# This may be replaced when dependencies are built.
