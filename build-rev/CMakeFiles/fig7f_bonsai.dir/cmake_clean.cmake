file(REMOVE_RECURSE
  "CMakeFiles/fig7f_bonsai.dir/bench/fig7f_bonsai.cpp.o"
  "CMakeFiles/fig7f_bonsai.dir/bench/fig7f_bonsai.cpp.o.d"
  "fig7f_bonsai"
  "fig7f_bonsai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7f_bonsai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
