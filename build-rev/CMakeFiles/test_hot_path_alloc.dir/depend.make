# Empty dependencies file for test_hot_path_alloc.
# This may be replaced when dependencies are built.
