file(REMOVE_RECURSE
  "CMakeFiles/test_hot_path_alloc.dir/tests/test_hot_path_alloc.cpp.o"
  "CMakeFiles/test_hot_path_alloc.dir/tests/test_hot_path_alloc.cpp.o.d"
  "test_hot_path_alloc"
  "test_hot_path_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hot_path_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
