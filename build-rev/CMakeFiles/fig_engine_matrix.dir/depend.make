# Empty dependencies file for fig_engine_matrix.
# This may be replaced when dependencies are built.
