file(REMOVE_RECURSE
  "CMakeFiles/fig_engine_matrix.dir/bench/fig_engine_matrix.cpp.o"
  "CMakeFiles/fig_engine_matrix.dir/bench/fig_engine_matrix.cpp.o.d"
  "fig_engine_matrix"
  "fig_engine_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_engine_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
