# Empty dependencies file for test_shard_coordinator.
# This may be replaced when dependencies are built.
