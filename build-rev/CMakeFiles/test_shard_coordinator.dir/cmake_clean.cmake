file(REMOVE_RECURSE
  "CMakeFiles/test_shard_coordinator.dir/tests/test_shard_coordinator.cpp.o"
  "CMakeFiles/test_shard_coordinator.dir/tests/test_shard_coordinator.cpp.o.d"
  "test_shard_coordinator"
  "test_shard_coordinator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shard_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
