file(REMOVE_RECURSE
  "CMakeFiles/plankton_verify.dir/examples/plankton_verify.cpp.o"
  "CMakeFiles/plankton_verify.dir/examples/plankton_verify.cpp.o.d"
  "plankton_verify"
  "plankton_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plankton_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
