# Empty dependencies file for plankton_verify.
# This may be replaced when dependencies are built.
