# Empty compiler generated dependencies file for plankton.
# This may be replaced when dependencies are built.
