
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/arc/arc.cpp" "CMakeFiles/plankton.dir/src/baselines/arc/arc.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/baselines/arc/arc.cpp.o.d"
  "/root/repo/src/baselines/sat/solver.cpp" "CMakeFiles/plankton.dir/src/baselines/sat/solver.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/baselines/sat/solver.cpp.o.d"
  "/root/repo/src/baselines/smt/bitvec.cpp" "CMakeFiles/plankton.dir/src/baselines/smt/bitvec.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/baselines/smt/bitvec.cpp.o.d"
  "/root/repo/src/baselines/smt/encoder.cpp" "CMakeFiles/plankton.dir/src/baselines/smt/encoder.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/baselines/smt/encoder.cpp.o.d"
  "/root/repo/src/checker/stats.cpp" "CMakeFiles/plankton.dir/src/checker/stats.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/checker/stats.cpp.o.d"
  "/root/repo/src/checker/trail.cpp" "CMakeFiles/plankton.dir/src/checker/trail.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/checker/trail.cpp.o.d"
  "/root/repo/src/config/network.cpp" "CMakeFiles/plankton.dir/src/config/network.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/config/network.cpp.o.d"
  "/root/repo/src/config/parser.cpp" "CMakeFiles/plankton.dir/src/config/parser.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/config/parser.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "CMakeFiles/plankton.dir/src/core/verifier.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/core/verifier.cpp.o.d"
  "/root/repo/src/dataplane/fib.cpp" "CMakeFiles/plankton.dir/src/dataplane/fib.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/dataplane/fib.cpp.o.d"
  "/root/repo/src/engine/frontier.cpp" "CMakeFiles/plankton.dir/src/engine/frontier.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/engine/frontier.cpp.o.d"
  "/root/repo/src/engine/search.cpp" "CMakeFiles/plankton.dir/src/engine/search.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/engine/search.cpp.o.d"
  "/root/repo/src/engine/state_codec.cpp" "CMakeFiles/plankton.dir/src/engine/state_codec.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/engine/state_codec.cpp.o.d"
  "/root/repo/src/engine/visited.cpp" "CMakeFiles/plankton.dir/src/engine/visited.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/engine/visited.cpp.o.d"
  "/root/repo/src/eqclass/bonsai.cpp" "CMakeFiles/plankton.dir/src/eqclass/bonsai.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/eqclass/bonsai.cpp.o.d"
  "/root/repo/src/eqclass/dec.cpp" "CMakeFiles/plankton.dir/src/eqclass/dec.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/eqclass/dec.cpp.o.d"
  "/root/repo/src/netbase/ip.cpp" "CMakeFiles/plankton.dir/src/netbase/ip.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/netbase/ip.cpp.o.d"
  "/root/repo/src/netbase/topology.cpp" "CMakeFiles/plankton.dir/src/netbase/topology.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/netbase/topology.cpp.o.d"
  "/root/repo/src/pec/pec.cpp" "CMakeFiles/plankton.dir/src/pec/pec.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/pec/pec.cpp.o.d"
  "/root/repo/src/pec/trie.cpp" "CMakeFiles/plankton.dir/src/pec/trie.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/pec/trie.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "CMakeFiles/plankton.dir/src/policy/policy.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/policy/policy.cpp.o.d"
  "/root/repo/src/protocols/bgp.cpp" "CMakeFiles/plankton.dir/src/protocols/bgp.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/protocols/bgp.cpp.o.d"
  "/root/repo/src/protocols/bgp_common.cpp" "CMakeFiles/plankton.dir/src/protocols/bgp_common.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/protocols/bgp_common.cpp.o.d"
  "/root/repo/src/protocols/ospf.cpp" "CMakeFiles/plankton.dir/src/protocols/ospf.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/protocols/ospf.cpp.o.d"
  "/root/repo/src/protocols/process.cpp" "CMakeFiles/plankton.dir/src/protocols/process.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/protocols/process.cpp.o.d"
  "/root/repo/src/protocols/route.cpp" "CMakeFiles/plankton.dir/src/protocols/route.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/protocols/route.cpp.o.d"
  "/root/repo/src/protocols/spvp.cpp" "CMakeFiles/plankton.dir/src/protocols/spvp.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/protocols/spvp.cpp.o.d"
  "/root/repo/src/rpvp/explorer.cpp" "CMakeFiles/plankton.dir/src/rpvp/explorer.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/rpvp/explorer.cpp.o.d"
  "/root/repo/src/rpvp/replay.cpp" "CMakeFiles/plankton.dir/src/rpvp/replay.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/rpvp/replay.cpp.o.d"
  "/root/repo/src/sched/deps.cpp" "CMakeFiles/plankton.dir/src/sched/deps.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/sched/deps.cpp.o.d"
  "/root/repo/src/sched/outcome_store.cpp" "CMakeFiles/plankton.dir/src/sched/outcome_store.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/sched/outcome_store.cpp.o.d"
  "/root/repo/src/sched/shard.cpp" "CMakeFiles/plankton.dir/src/sched/shard.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/sched/shard.cpp.o.d"
  "/root/repo/src/sched/work_stealing.cpp" "CMakeFiles/plankton.dir/src/sched/work_stealing.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/sched/work_stealing.cpp.o.d"
  "/root/repo/src/workload/as_topo.cpp" "CMakeFiles/plankton.dir/src/workload/as_topo.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/workload/as_topo.cpp.o.d"
  "/root/repo/src/workload/enterprise.cpp" "CMakeFiles/plankton.dir/src/workload/enterprise.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/workload/enterprise.cpp.o.d"
  "/root/repo/src/workload/external.cpp" "CMakeFiles/plankton.dir/src/workload/external.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/workload/external.cpp.o.d"
  "/root/repo/src/workload/fat_tree.cpp" "CMakeFiles/plankton.dir/src/workload/fat_tree.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/workload/fat_tree.cpp.o.d"
  "/root/repo/src/workload/ring.cpp" "CMakeFiles/plankton.dir/src/workload/ring.cpp.o" "gcc" "CMakeFiles/plankton.dir/src/workload/ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
