file(REMOVE_RECURSE
  "libplankton.a"
)
