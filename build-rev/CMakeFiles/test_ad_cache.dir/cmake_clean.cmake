file(REMOVE_RECURSE
  "CMakeFiles/test_ad_cache.dir/tests/test_ad_cache.cpp.o"
  "CMakeFiles/test_ad_cache.dir/tests/test_ad_cache.cpp.o.d"
  "test_ad_cache"
  "test_ad_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ad_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
