# Empty dependencies file for test_ad_cache.
# This may be replaced when dependencies are built.
