# Empty dependencies file for isp_failure_audit.
# This may be replaced when dependencies are built.
