file(REMOVE_RECURSE
  "CMakeFiles/isp_failure_audit.dir/examples/isp_failure_audit.cpp.o"
  "CMakeFiles/isp_failure_audit.dir/examples/isp_failure_audit.cpp.o.d"
  "isp_failure_audit"
  "isp_failure_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_failure_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
