file(REMOVE_RECURSE
  "CMakeFiles/test_routes.dir/tests/test_routes.cpp.o"
  "CMakeFiles/test_routes.dir/tests/test_routes.cpp.o.d"
  "test_routes"
  "test_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
