# Empty compiler generated dependencies file for test_routes.
# This may be replaced when dependencies are built.
