# Empty dependencies file for fig7h_realworld.
# This may be replaced when dependencies are built.
