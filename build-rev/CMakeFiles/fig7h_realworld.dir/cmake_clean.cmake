file(REMOVE_RECURSE
  "CMakeFiles/fig7h_realworld.dir/bench/fig7h_realworld.cpp.o"
  "CMakeFiles/fig7h_realworld.dir/bench/fig7h_realworld.cpp.o.d"
  "fig7h_realworld"
  "fig7h_realworld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7h_realworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
