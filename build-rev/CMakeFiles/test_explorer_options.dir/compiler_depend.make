# Empty compiler generated dependencies file for test_explorer_options.
# This may be replaced when dependencies are built.
