file(REMOVE_RECURSE
  "CMakeFiles/test_explorer_options.dir/tests/test_explorer_options.cpp.o"
  "CMakeFiles/test_explorer_options.dir/tests/test_explorer_options.cpp.o.d"
  "test_explorer_options"
  "test_explorer_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_explorer_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
