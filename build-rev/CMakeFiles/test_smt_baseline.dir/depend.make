# Empty dependencies file for test_smt_baseline.
# This may be replaced when dependencies are built.
