file(REMOVE_RECURSE
  "CMakeFiles/test_smt_baseline.dir/tests/test_smt_baseline.cpp.o"
  "CMakeFiles/test_smt_baseline.dir/tests/test_smt_baseline.cpp.o.d"
  "test_smt_baseline"
  "test_smt_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smt_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
