# Empty compiler generated dependencies file for fig7e_ibgp.
# This may be replaced when dependencies are built.
