file(REMOVE_RECURSE
  "CMakeFiles/fig7e_ibgp.dir/bench/fig7e_ibgp.cpp.o"
  "CMakeFiles/fig7e_ibgp.dir/bench/fig7e_ibgp.cpp.o.d"
  "fig7e_ibgp"
  "fig7e_ibgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7e_ibgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
