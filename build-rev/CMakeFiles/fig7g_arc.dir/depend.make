# Empty dependencies file for fig7g_arc.
# This may be replaced when dependencies are built.
