file(REMOVE_RECURSE
  "CMakeFiles/fig7g_arc.dir/bench/fig7g_arc.cpp.o"
  "CMakeFiles/fig7g_arc.dir/bench/fig7g_arc.cpp.o.d"
  "fig7g_arc"
  "fig7g_arc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7g_arc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
