# Empty dependencies file for test_route_maps.
# This may be replaced when dependencies are built.
