file(REMOVE_RECURSE
  "CMakeFiles/test_route_maps.dir/tests/test_route_maps.cpp.o"
  "CMakeFiles/test_route_maps.dir/tests/test_route_maps.cpp.o.d"
  "test_route_maps"
  "test_route_maps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_maps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
