file(REMOVE_RECURSE
  "CMakeFiles/fig7i_consistency.dir/bench/fig7i_consistency.cpp.o"
  "CMakeFiles/fig7i_consistency.dir/bench/fig7i_consistency.cpp.o.d"
  "fig7i_consistency"
  "fig7i_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7i_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
