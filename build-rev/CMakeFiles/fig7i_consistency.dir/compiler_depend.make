# Empty compiler generated dependencies file for fig7i_consistency.
# This may be replaced when dependencies are built.
