file(REMOVE_RECURSE
  "CMakeFiles/test_ospf_process.dir/tests/test_ospf_process.cpp.o"
  "CMakeFiles/test_ospf_process.dir/tests/test_ospf_process.cpp.o.d"
  "test_ospf_process"
  "test_ospf_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ospf_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
