# Empty dependencies file for test_ospf_process.
# This may be replaced when dependencies are built.
