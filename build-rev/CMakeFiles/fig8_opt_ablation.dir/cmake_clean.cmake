file(REMOVE_RECURSE
  "CMakeFiles/fig8_opt_ablation.dir/bench/fig8_opt_ablation.cpp.o"
  "CMakeFiles/fig8_opt_ablation.dir/bench/fig8_opt_ablation.cpp.o.d"
  "fig8_opt_ablation"
  "fig8_opt_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_opt_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
