# Empty dependencies file for fig7a_fattree_loop.
# This may be replaced when dependencies are built.
