file(REMOVE_RECURSE
  "CMakeFiles/fig7a_fattree_loop.dir/bench/fig7a_fattree_loop.cpp.o"
  "CMakeFiles/fig7a_fattree_loop.dir/bench/fig7a_fattree_loop.cpp.o.d"
  "fig7a_fattree_loop"
  "fig7a_fattree_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_fattree_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
