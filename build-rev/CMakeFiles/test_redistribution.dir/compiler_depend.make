# Empty compiler generated dependencies file for test_redistribution.
# This may be replaced when dependencies are built.
