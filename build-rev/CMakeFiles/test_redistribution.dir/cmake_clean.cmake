file(REMOVE_RECURSE
  "CMakeFiles/test_redistribution.dir/tests/test_redistribution.cpp.o"
  "CMakeFiles/test_redistribution.dir/tests/test_redistribution.cpp.o.d"
  "test_redistribution"
  "test_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
