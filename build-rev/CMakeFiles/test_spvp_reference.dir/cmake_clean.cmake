file(REMOVE_RECURSE
  "CMakeFiles/test_spvp_reference.dir/tests/test_spvp_reference.cpp.o"
  "CMakeFiles/test_spvp_reference.dir/tests/test_spvp_reference.cpp.o.d"
  "test_spvp_reference"
  "test_spvp_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spvp_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
