# Empty compiler generated dependencies file for test_spvp_reference.
# This may be replaced when dependencies are built.
