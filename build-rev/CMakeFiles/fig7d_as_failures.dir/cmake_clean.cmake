file(REMOVE_RECURSE
  "CMakeFiles/fig7d_as_failures.dir/bench/fig7d_as_failures.cpp.o"
  "CMakeFiles/fig7d_as_failures.dir/bench/fig7d_as_failures.cpp.o.d"
  "fig7d_as_failures"
  "fig7d_as_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7d_as_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
