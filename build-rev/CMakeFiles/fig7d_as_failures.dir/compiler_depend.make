# Empty compiler generated dependencies file for fig7d_as_failures.
# This may be replaced when dependencies are built.
