# Empty compiler generated dependencies file for fig9_bitstate.
# This may be replaced when dependencies are built.
