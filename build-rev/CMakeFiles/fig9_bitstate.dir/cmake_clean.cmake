file(REMOVE_RECURSE
  "CMakeFiles/fig9_bitstate.dir/bench/fig9_bitstate.cpp.o"
  "CMakeFiles/fig9_bitstate.dir/bench/fig9_bitstate.cpp.o.d"
  "fig9_bitstate"
  "fig9_bitstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_bitstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
