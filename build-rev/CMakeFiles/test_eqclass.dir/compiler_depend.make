# Empty compiler generated dependencies file for test_eqclass.
# This may be replaced when dependencies are built.
