file(REMOVE_RECURSE
  "CMakeFiles/test_eqclass.dir/tests/test_eqclass.cpp.o"
  "CMakeFiles/test_eqclass.dir/tests/test_eqclass.cpp.o.d"
  "test_eqclass"
  "test_eqclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eqclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
