file(REMOVE_RECURSE
  "CMakeFiles/ibgp_recursive.dir/examples/ibgp_recursive.cpp.o"
  "CMakeFiles/ibgp_recursive.dir/examples/ibgp_recursive.cpp.o.d"
  "ibgp_recursive"
  "ibgp_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibgp_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
