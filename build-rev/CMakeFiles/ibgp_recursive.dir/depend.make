# Empty dependencies file for ibgp_recursive.
# This may be replaced when dependencies are built.
