file(REMOVE_RECURSE
  "CMakeFiles/test_multiprefix.dir/tests/test_multiprefix.cpp.o"
  "CMakeFiles/test_multiprefix.dir/tests/test_multiprefix.cpp.o.d"
  "test_multiprefix"
  "test_multiprefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiprefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
