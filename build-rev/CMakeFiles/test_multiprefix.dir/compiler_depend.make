# Empty compiler generated dependencies file for test_multiprefix.
# This may be replaced when dependencies are built.
