file(REMOVE_RECURSE
  "CMakeFiles/test_visited_backends.dir/tests/test_visited_backends.cpp.o"
  "CMakeFiles/test_visited_backends.dir/tests/test_visited_backends.cpp.o.d"
  "test_visited_backends"
  "test_visited_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_visited_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
