file(REMOVE_RECURSE
  "CMakeFiles/test_arc_baseline.dir/tests/test_arc_baseline.cpp.o"
  "CMakeFiles/test_arc_baseline.dir/tests/test_arc_baseline.cpp.o.d"
  "test_arc_baseline"
  "test_arc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arc_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
