# Empty compiler generated dependencies file for test_arc_baseline.
# This may be replaced when dependencies are built.
