file(REMOVE_RECURSE
  "CMakeFiles/fig2_mc_vs_smt.dir/bench/fig2_mc_vs_smt.cpp.o"
  "CMakeFiles/fig2_mc_vs_smt.dir/bench/fig2_mc_vs_smt.cpp.o.d"
  "fig2_mc_vs_smt"
  "fig2_mc_vs_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_mc_vs_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
