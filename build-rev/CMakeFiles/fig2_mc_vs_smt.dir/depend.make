# Empty dependencies file for fig2_mc_vs_smt.
# This may be replaced when dependencies are built.
