# Empty dependencies file for fig7c_bgp_dc_waypoint.
# This may be replaced when dependencies are built.
