file(REMOVE_RECURSE
  "CMakeFiles/fig7c_bgp_dc_waypoint.dir/bench/fig7c_bgp_dc_waypoint.cpp.o"
  "CMakeFiles/fig7c_bgp_dc_waypoint.dir/bench/fig7c_bgp_dc_waypoint.cpp.o.d"
  "fig7c_bgp_dc_waypoint"
  "fig7c_bgp_dc_waypoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_bgp_dc_waypoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
