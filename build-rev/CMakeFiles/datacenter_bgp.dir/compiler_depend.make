# Empty compiler generated dependencies file for datacenter_bgp.
# This may be replaced when dependencies are built.
