file(REMOVE_RECURSE
  "CMakeFiles/datacenter_bgp.dir/examples/datacenter_bgp.cpp.o"
  "CMakeFiles/datacenter_bgp.dir/examples/datacenter_bgp.cpp.o.d"
  "datacenter_bgp"
  "datacenter_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
