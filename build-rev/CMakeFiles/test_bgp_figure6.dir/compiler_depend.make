# Empty compiler generated dependencies file for test_bgp_figure6.
# This may be replaced when dependencies are built.
