file(REMOVE_RECURSE
  "CMakeFiles/test_bgp_figure6.dir/tests/test_bgp_figure6.cpp.o"
  "CMakeFiles/test_bgp_figure6.dir/tests/test_bgp_figure6.cpp.o.d"
  "test_bgp_figure6"
  "test_bgp_figure6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp_figure6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
